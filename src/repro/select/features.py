"""Cheap per-chunk statistics that drive codec selection.

FCBench's cross-domain result — no single method dominates — is driven
by measurable block statistics: entropy class, smoothness, and mantissa
structure (paper sections 5-7; the benchmark-datasets companion work
makes the same point per block).  This module computes those statistics
for one chunk at write time, cheaply enough to run inside a
:class:`~repro.api.session.CompressSession` flush:

* value/byte entropy via :mod:`repro.data.entropy` (Table 3's columns),
* XOR-residual structure via the :mod:`repro.compressors.util` exact
  float-exponent fast paths (the quantities Gorilla/Chimp windows code),
* lag-1 autocorrelation (smooth fields vs. noise),
* exponent spread and decimal quantization (what BUFF and the DB-domain
  coders exploit).

Everything is deterministic: the same chunk bytes always produce the
same :class:`ChunkFeatures`, which is what makes the parallel auto
write path byte-identical to the serial one.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.compressors.util import (
    UINT_FOR_FLOAT,
    float_bits,
    leading_zeros,
    significant_bits,
    trailing_zeros,
)
from repro.data.entropy import byte_entropy

__all__ = [
    "FEATURE_SAMPLE_ELEMENTS",
    "MAX_DECIMAL_DIGITS",
    "ChunkFeatures",
    "extract_features",
]

#: Features are computed on at most this many leading elements — a
#: fixed prefix keeps extraction O(sample) per chunk and deterministic
#: regardless of chunk size.
FEATURE_SAMPLE_ELEMENTS = 8192

#: Largest decimal precision probed by :func:`extract_features`.
MAX_DECIMAL_DIGITS = 4


@dataclass(frozen=True)
class ChunkFeatures:
    """Deterministic selection statistics for one chunk."""

    n_elements: int
    sampled: int
    #: Distinct bit patterns / sampled count — low for quantized or
    #: repeat-heavy data (Table 3's low-entropy class).
    frac_unique: float
    #: Shannon entropy of the raw byte stream, bits/byte.
    byte_entropy: float
    #: Byte entropy of the lag-1 XOR residual stream — what the
    #: XOR-window and byte-stream codecs actually see.
    delta_byte_entropy: float
    #: Lag-1 autocorrelation of the (finite) values; ~1 for smooth
    #: fields, ~0 for noise and shuffled tables.
    lag1_autocorr: float
    #: Mean significant bits of the lag-1 XOR residual over the word
    #: width — the Gorilla/Chimp window cost per element.
    xor_significant_fraction: float
    #: Mean leading / trailing zero fraction of the XOR residuals
    #: (mantissa-structure stats, via the util fast paths).
    xor_lead_fraction: float
    xor_trail_fraction: float
    #: Distinct IEEE exponents in the sample (dynamic-range spread).
    exponent_count: int
    #: Smallest d <= MAX_DECIMAL_DIGITS with round(v, d) == v for the
    #: whole sample, or -1 when the data is not decimal-quantized.
    decimal_digits: int

    def as_dict(self) -> dict:
        return asdict(self)

    def numeric_vector(self) -> tuple[float, ...]:
        """Feature values in :data:`FEATURE_ORDER` (for learned policies)."""
        record = self.as_dict()
        return tuple(float(record[name]) for name in FEATURE_ORDER)


#: Stable feature ordering used by the learned policy's distance metric.
FEATURE_ORDER = (
    "frac_unique",
    "byte_entropy",
    "delta_byte_entropy",
    "lag1_autocorr",
    "xor_significant_fraction",
    "xor_lead_fraction",
    "xor_trail_fraction",
    "exponent_count",
    "decimal_digits",
)


def _lag1_autocorr(values: np.ndarray) -> float:
    if values.size < 2:
        return 0.0
    finite = np.nan_to_num(
        values.astype(np.float64, copy=False), posinf=0.0, neginf=0.0
    )
    centered = finite - finite.mean()
    x, y = centered[:-1], centered[1:]
    denom = np.sqrt(float((x * x).sum()) * float((y * y).sum()))
    if denom == 0.0:
        return 0.0
    return float((x * y).sum() / denom)


def _decimal_digits(values: np.ndarray) -> int:
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return -1
    # Representation noise scales with magnitude (a stored decimal is
    # only exact to ~ulp), but the probe is only meaningful while the
    # tolerance stays far below the quantization step 0.5 * 10^-d —
    # otherwise any large-magnitude continuous field would "round
    # clean" and be misclassified as decimal-quantized.
    relative = 1e-6 if values.dtype == np.float32 else 1e-10
    noise = relative * max(1.0, float(np.abs(finite).max()))
    finite = finite.astype(np.float64, copy=False)
    for digits in range(MAX_DECIMAL_DIGITS + 1):
        tolerance = min(noise, 0.05 * 10.0**-digits)
        if np.abs(np.round(finite, digits) - finite).max() <= tolerance:
            return digits
    return -1


def extract_features(
    chunk: np.ndarray, sample_elements: int = FEATURE_SAMPLE_ELEMENTS
) -> ChunkFeatures:
    """Compute :class:`ChunkFeatures` for one float chunk.

    Only the first ``sample_elements`` values are inspected; statistics
    are exact over that prefix and deterministic for identical bytes.
    """
    flat = np.ascontiguousarray(chunk).ravel()
    if flat.dtype not in UINT_FOR_FLOAT:
        from repro.errors import UnsupportedDtypeError

        raise UnsupportedDtypeError(
            f"feature extraction expects float32/float64, got {flat.dtype}"
        )
    n_elements = int(flat.size)
    sample = flat[: max(1, int(sample_elements))] if n_elements else flat
    sampled = int(sample.size)
    if sampled == 0:
        return ChunkFeatures(
            n_elements=0,
            sampled=0,
            frac_unique=0.0,
            byte_entropy=0.0,
            delta_byte_entropy=0.0,
            lag1_autocorr=0.0,
            xor_significant_fraction=0.0,
            xor_lead_fraction=0.0,
            xor_trail_fraction=0.0,
            exponent_count=0,
            decimal_digits=-1,
        )
    bits = float_bits(sample)
    width = bits.dtype.itemsize * 8
    frac_unique = float(len(np.unique(bits)) / sampled)
    if sampled > 1:
        xor = bits[1:] ^ bits[:-1]
        xor_sig = float(significant_bits(xor).mean()) / width
        xor_lead = float(leading_zeros(xor).mean()) / width
        xor_trail = float(trailing_zeros(xor).mean()) / width
        delta_entropy = byte_entropy(xor)
    else:
        xor_sig = xor_lead = xor_trail = 0.0
        delta_entropy = 0.0
    if width == 32:
        exponents = (bits >> np.uint32(23)) & np.uint32(0xFF)
    else:
        exponents = (bits >> np.uint64(52)) & np.uint64(0x7FF)
    return ChunkFeatures(
        n_elements=n_elements,
        sampled=sampled,
        frac_unique=frac_unique,
        byte_entropy=byte_entropy(sample),
        delta_byte_entropy=delta_entropy,
        lag1_autocorr=_lag1_autocorr(sample),
        xor_significant_fraction=xor_sig,
        xor_lead_fraction=xor_lead,
        xor_trail_fraction=xor_trail,
        exponent_count=int(len(np.unique(exponents))),
        decimal_digits=_decimal_digits(sample),
    )
