"""Online (bandit) codec selection fed by served observations.

The offline policies (:mod:`repro.select.policy`) freeze their choices
at build or training time.  In a long-lived multi-tenant server the
input regime *shifts* — one tenant streams smooth HPC fields in the
morning and decimal-quantized DB columns at night — and the best arm
per chunk shape moves with it.  :class:`OnlinePolicy` closes that loop:

* chunks are mapped to a coarse **feature bucket**
  (:func:`feature_bucket`) so observations generalize across chunks of
  the same shape without memorizing individual arrays;
* within each bucket a **UCB1 bandit** plays the
  :class:`~repro.select.policy.HeuristicPolicy` candidate arms, with
  the served outcome (bytes in/out, seconds) folded back through
  :meth:`OnlinePolicy.observe`;
* exploration is **deterministically seeded** — the first pass over the
  arms uses a seed-shuffled order and every tie breaks by candidate
  position, so a replayed observation sequence reproduces the exact arm
  sequence (tested in ``tests/select/test_online.py``).

Rewards are the *savings fraction* ``1 - bytes_out / bytes_in`` (0 for
incompressible, → 1 for highly compressible), optionally charged a
latency toll (``latency_weight`` × seconds per compressed MiB) so a
slow arm must out-compress a fast one to keep its slot — the paper's
throughput-vs-ratio trade-off expressed as a scalar.

:class:`OnlineSelectorHub` is the server-side container: one bandit per
tenant (seeds derived stably from the hub seed and tenant id), a lock
for cross-thread access, and a JSON-ready snapshot for the gateway.
"""

from __future__ import annotations

import math
import random
import threading
import zlib

import numpy as np

from repro.errors import SelectionError
from repro.select.features import ChunkFeatures, extract_features
from repro.select.policy import (
    HeuristicPolicy,
    SelectionDecision,
    SelectionPolicy,
)

__all__ = [
    "feature_bucket",
    "OnlinePolicy",
    "OnlineSelectorHub",
    "PRODUCTION_LATENCY_WEIGHT",
]


def feature_bucket(features: ChunkFeatures) -> str:
    """Coarse regime label for one chunk's features.

    Three axes — decimal quantization, value repetition, smoothness —
    matching the split points :class:`HeuristicPolicy` rules on, so the
    bandit's buckets line up with regimes where a single fixed arm is
    near-optimal.  Coarseness is deliberate: a handful of buckets means
    each one accumulates observations fast enough to converge within a
    stream, not just within a deployment.
    """
    decimal = "dec" if features.decimal_digits >= 0 else "cont"
    if features.frac_unique < 0.5:
        unique = "rep"
    elif features.frac_unique < 0.95:
        unique = "mix"
    else:
        unique = "uniq"
    smooth = "smooth" if features.lag1_autocorr >= 0.80 else "rough"
    return f"{decimal}:{unique}:{smooth}"


class _ArmStats:
    """Pull/observation counts and (optionally decayed) mean reward.

    ``pulls`` is charged by :meth:`OnlinePolicy.choose` the moment the
    arm is selected (so concurrent in-flight requests spread out);
    ``observations`` counts the outcomes that actually came back and is
    what the running mean averages over.
    """

    __slots__ = ("pulls", "observations", "mean")

    def __init__(self) -> None:
        self.pulls = 0
        self.observations = 0
        self.mean = 0.0

    def update(self, reward: float, decay: float) -> None:
        self.observations += 1
        if decay >= 1.0:
            self.mean += (reward - self.mean) / self.observations
        else:
            # Exponential recency weighting: old regimes fade even when
            # the bucket stays hot.
            step = max(1.0 / self.observations, 1.0 - decay)
            self.mean += (reward - self.mean) * step


class _BucketState:
    """One bucket's bandit: per-arm stats plus a seeded first-pass order."""

    __slots__ = ("arms", "order", "total")

    def __init__(self, candidates: tuple[str, ...], rng: random.Random) -> None:
        self.arms = {name: _ArmStats() for name in candidates}
        order = list(candidates)
        rng.shuffle(order)
        self.order = tuple(order)
        self.total = 0


class OnlinePolicy(SelectionPolicy):
    """UCB1 bandit over the heuristic arms, bucketed by chunk features.

    Unlike the offline policies this one is *stateful*: every
    :meth:`decide` increments the chosen arm's pull count immediately
    (so concurrent in-flight chunks spread across arms instead of
    dog-piling one), and :meth:`observe` folds the measured outcome
    back in.  Determinism contract: same seed + same (chunk, observe)
    sequence → same arm sequence.

    Not thread-safe on its own — :class:`OnlineSelectorHub` adds the
    lock for server use.
    """

    name = "online"

    def __init__(
        self,
        candidates: tuple[str, ...] | None = None,
        seed: int = 0,
        exploration: float = 0.5,
        latency_weight: float = 0.0,
        decay: float = 1.0,
        sample_elements: int | None = None,
    ) -> None:
        base = HeuristicPolicy()
        self.candidates = (
            tuple(candidates) if candidates else base.candidates
        )
        if not self.candidates:
            raise SelectionError("OnlinePolicy requires at least one arm")
        if not 0.0 < decay <= 1.0:
            raise SelectionError(f"decay must be in (0, 1], got {decay}")
        self.seed = int(seed)
        self.exploration = float(exploration)
        self.latency_weight = float(latency_weight)
        self.decay = float(decay)
        self.sample_elements = (
            base.sample_elements if sample_elements is None else sample_elements
        )
        self._rng = random.Random(self.seed)
        self._buckets: dict[str, _BucketState] = {}

    # -- bandit core ---------------------------------------------------
    def _bucket(self, bucket: str) -> _BucketState:
        state = self._buckets.get(bucket)
        if state is None:
            # Each bucket's first-pass order draws from the policy RNG in
            # bucket-creation order; chunk sequence drives creation order,
            # so replays reproduce it.
            state = _BucketState(self.candidates, self._rng)
            self._buckets[bucket] = state
        return state

    def choose(self, bucket: str) -> str:
        """Pick (and charge a pull to) an arm for ``bucket``."""
        state = self._bucket(bucket)
        chosen = None
        for name in state.order:
            if state.arms[name].pulls == 0:
                chosen = name
                break
        if chosen is None:
            total = max(state.total, 1)
            bonus = self.exploration * math.sqrt(math.log(total))

            def score(name: str) -> tuple[float, int]:
                arm = state.arms[name]
                ucb = arm.mean + bonus / math.sqrt(arm.pulls)
                # Ties break toward the earlier candidate, never the
                # dict/hash order.
                return (-ucb, self.candidates.index(name))

            chosen = min(self.candidates, key=score)
        state.arms[chosen].pulls += 1
        state.total += 1
        return chosen

    def reward(self, bytes_in: int, bytes_out: int, seconds: float) -> float:
        """Scalarize one served outcome into ``[0, 1]``-ish reward."""
        if bytes_in <= 0:
            return 0.0
        saving = 1.0 - bytes_out / bytes_in
        if self.latency_weight > 0.0 and bytes_in > 0:
            mib = bytes_in / (1024.0 * 1024.0)
            saving -= self.latency_weight * (seconds / max(mib, 1e-9))
        return max(0.0, min(1.0, saving))

    def observe(
        self,
        bucket: str,
        codec: str,
        bytes_in: int,
        bytes_out: int,
        seconds: float = 0.0,
    ) -> None:
        """Fold one served outcome back into the bucket's arm stats.

        The pull was already charged by :meth:`choose`; this only moves
        the mean, so a decision whose request died mid-flight simply
        never sharpens the estimate.
        """
        state = self._bucket(bucket)
        arm = state.arms.get(codec)
        if arm is None:
            return  # arm retired from the candidate set; drop silently
        if arm.pulls == 0:
            # Observation for an arm this instance never chose (e.g.
            # restored snapshot drift): count it so UCB stays defined.
            arm.pulls = 1
            state.total += 1
        arm.update(self.reward(bytes_in, bytes_out, seconds), self.decay)

    # -- SelectionPolicy interface ------------------------------------
    def decide(self, chunk: np.ndarray) -> SelectionDecision:
        features = extract_features(chunk, self.sample_elements)
        bucket = feature_bucket(features)
        state = self._bucket(bucket)
        codec = self.choose(bucket)
        arm = state.arms[codec]
        return SelectionDecision(
            codec,
            f"bandit bucket {bucket}: arm {codec!r} "
            f"(pulls {arm.pulls}, mean reward {arm.mean:.3f})",
            features,
        )

    # -- observability / persistence ----------------------------------
    def snapshot(self) -> dict:
        """JSON-ready per-bucket arm statistics."""
        buckets = {}
        for bucket, state in sorted(self._buckets.items()):
            buckets[bucket] = {
                "total": state.total,
                "arms": {
                    name: {
                        "pulls": arm.pulls,
                        "observations": arm.observations,
                        "mean_reward": round(arm.mean, 6),
                    }
                    for name, arm in state.arms.items()
                },
            }
        return {
            "seed": self.seed,
            "candidates": list(self.candidates),
            "buckets": buckets,
        }


#: Latency toll applied by the serving profile's reward
#: (:class:`OnlineSelectorHub` default): reward = byte saving −
#: weight × seconds-per-MiB.  At 2.0, a codec running 100 MiB/s pays
#: 0.02 reward, 10 MiB/s pays 0.2, and 2 MiB/s forfeits the whole
#: saving — a marginally tighter but much slower arm loses to a fast
#: near-tight one, which is the trade a latency-sensitive service
#: wants.  Offline :class:`OnlinePolicy` use keeps the pure
#: compression-ratio reward (weight 0) unless asked.
PRODUCTION_LATENCY_WEIGHT = 2.0


class OnlineSelectorHub:
    """Per-tenant bandits behind one lock, for the serving path.

    The server's batch executor asks :meth:`decide` for an arm before
    shipping work to the pool and calls :meth:`observe` when results
    land; the gateway's ``/tenants`` endpoint snapshots concurrently.
    Tenant seeds derive from ``crc32(tenant_id)`` mixed with the hub
    seed, so a restarted server with the same tenant set replays the
    same exploration — and adding a tenant never perturbs another
    tenant's sequence.

    The hub is the production profile, so its policies default to the
    latency-aware reward (``latency_weight``
    :data:`PRODUCTION_LATENCY_WEIGHT`); pass ``latency_weight=0.0`` to
    reward compression ratio alone.
    """

    #: Tenant key used when the server runs without a tenant registry.
    DEFAULT_TENANT = "_default"

    def __init__(self, seed: int = 0, **policy_options) -> None:
        self.seed = int(seed)
        policy_options.setdefault(
            "latency_weight", PRODUCTION_LATENCY_WEIGHT
        )
        self._policy_options = policy_options
        self._lock = threading.Lock()
        self._policies: dict[str, OnlinePolicy] = {}

    def _policy(self, tenant_id: str) -> OnlinePolicy:
        policy = self._policies.get(tenant_id)
        if policy is None:
            tenant_seed = self.seed ^ zlib.crc32(tenant_id.encode("utf-8"))
            policy = OnlinePolicy(seed=tenant_seed, **self._policy_options)
            self._policies[tenant_id] = policy
        return policy

    def decide(
        self, tenant_id: str | None, chunk: np.ndarray
    ) -> tuple[str, str]:
        """Choose ``(codec, bucket)`` for one chunk of one tenant."""
        tenant = tenant_id or self.DEFAULT_TENANT
        with self._lock:
            policy = self._policy(tenant)
            features = extract_features(chunk, policy.sample_elements)
            bucket = feature_bucket(features)
            return policy.choose(bucket), bucket

    def observe(
        self,
        tenant_id: str | None,
        bucket: str,
        codec: str,
        bytes_in: int,
        bytes_out: int,
        seconds: float = 0.0,
    ) -> None:
        tenant = tenant_id or self.DEFAULT_TENANT
        with self._lock:
            self._policy(tenant).observe(
                bucket, codec, bytes_in, bytes_out, seconds
            )

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "seed": self.seed,
                "tenants": {
                    tenant: policy.snapshot()
                    for tenant, policy in sorted(self._policies.items())
                },
            }
