"""Pluggable per-chunk codec-selection policies for the ``auto`` codec.

Three policies, in increasing cost:

* :class:`HeuristicPolicy` — feature thresholds derived from the
  paper's section-7.3 recommendation rules, re-fit on the generated
  corpus: repeat-heavy/quantized chunks go to the strongest
  entropy-backed coder, decimal-quantized high-cardinality chunks to
  BUFF's bounded fixed-point representation, smooth fields to fpzip's
  predictor, everything else to bitshuffle+zstd (the paper's
  general-purpose pick).
* :class:`MeasuredPolicy` — trial-compresses a fixed sample prefix of
  the chunk with every candidate and keeps the smallest output; ties
  break toward the earlier candidate, so selection is deterministic.
* :class:`LearnedPolicy` — nearest-neighbour lookup in a feature →
  winner table fit offline from the suite cache
  (:mod:`repro.select.train`, ``fcbench select train``).

Policies are plain picklable objects: the chunk-parallel write path
ships them to worker processes, and because every policy is a pure
function of the chunk bytes, the parallel stream stays byte-identical
to the serial one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.core.recommend import profile_candidates
from repro.errors import SelectionError
from repro.select.features import (
    FEATURE_ORDER,
    FEATURE_SAMPLE_ELEMENTS,
    ChunkFeatures,
    extract_features,
)

__all__ = [
    "DEFAULT_CANDIDATES",
    "POLICY_NAMES",
    "SelectionDecision",
    "SelectionPolicy",
    "HeuristicPolicy",
    "MeasuredPolicy",
    "LearnedPolicy",
    "resolve_policy",
    "codec_instance",
    "pick_smallest",
]

#: Default candidate set: the storage profile of section 7.3 (the
#: per-domain compression-ratio winners as realized on this
#: reproduction's corpus).
DEFAULT_CANDIDATES = profile_candidates("storage")

POLICY_NAMES = ("heuristic", "measured", "learned", "online")


@lru_cache(maxsize=None)
def codec_instance(name: str):
    """Shared compressor instance for ``name`` (``None`` for ``"none"``).

    Compressors are stateless, so one instance per process serves every
    frame; raises ``KeyError`` for unknown names (write-path error — the
    read path goes through :func:`repro.api.frames.resolve_codec`).
    """
    from repro.api.frames import RAW_CODEC
    from repro.compressors import get_compressor

    if name == RAW_CODEC:
        return None
    return get_compressor(name)


@dataclass(frozen=True)
class SelectionDecision:
    """One explained choice: codec, features, human-readable reason."""

    codec: str
    reason: str
    features: ChunkFeatures


class SelectionPolicy:
    """Base interface: map one chunk to a candidate codec name.

    Subclasses define :attr:`candidates` (the stream's codec table, in
    a stable order) and :meth:`decide`; :meth:`select` is the hot-path
    wrapper that returns only the codec name.
    """

    name = "base"
    candidates: tuple[str, ...] = ()

    def decide(self, chunk: np.ndarray) -> SelectionDecision:
        raise NotImplementedError

    def select(self, chunk: np.ndarray) -> str:
        return self.decide(chunk).codec


@dataclass(frozen=True)
class HeuristicPolicy(SelectionPolicy):
    """Feature-threshold rules (paper section 7.3, re-fit per domain).

    The rule chain mirrors the paper's per-domain findings in feature
    space rather than by dataset label, so it applies chunk by chunk:

    1. decimal-quantized (``decimal_digits`` found): near-fully-unique
       chunks (``frac_unique`` at least ``decimal_unique_threshold``) →
       ``decimal_codec`` — BUFF's bounded fixed-point sweet spot (DB
       money columns); everything else decimal (sensor ticks,
       trajectories, tables with repeated keys) → ``repeat_codec``,
       whose entropy stage exploits the shrunken value alphabet at any
       chunk granularity;
    2. repeat-heavy (``frac_unique`` below ``repeat_threshold``) →
       ``repeat_codec`` — the OBS/DB low-entropy regime;
    3. smooth (``lag1_autocorr`` above ``smooth_threshold``) →
       ``smooth_codec`` — fpzip's predictor on HPC/OBS fields;
    4. otherwise → ``default_codec`` — bitshuffle+zstd, the paper's
       general-purpose recommendation for noisy data.
    """

    #: Continuous data is effectively all-unique per chunk (measured
    #: >= 0.989 across the corpus at 4 Ki granularity), while partially
    #: quantized fields sit well below (wave <= 0.935): 0.95 splits the
    #: two regimes with margin on both sides.
    repeat_threshold: float = 0.95
    smooth_threshold: float = 0.80
    decimal_unique_threshold: float = 0.98
    repeat_codec: str = "dzip"
    decimal_codec: str = "buff"
    smooth_codec: str = "fpzip"
    default_codec: str = "bitshuffle-zstd"
    sample_elements: int = FEATURE_SAMPLE_ELEMENTS

    name = "heuristic"

    @property
    def candidates(self) -> tuple[str, ...]:  # type: ignore[override]
        roles = (
            self.default_codec,
            self.repeat_codec,
            self.decimal_codec,
            self.smooth_codec,
        )
        return tuple(dict.fromkeys(roles))

    def decide(self, chunk: np.ndarray) -> SelectionDecision:
        features = extract_features(chunk, self.sample_elements)
        if features.decimal_digits >= 0:
            if features.frac_unique >= self.decimal_unique_threshold:
                return SelectionDecision(
                    self.decimal_codec,
                    f"decimal-quantized to {features.decimal_digits} "
                    f"digit(s), frac_unique {features.frac_unique:.3f} >= "
                    f"{self.decimal_unique_threshold}",
                    features,
                )
            return SelectionDecision(
                self.repeat_codec,
                f"decimal-quantized to {features.decimal_digits} digit(s) "
                f"with repeats (frac_unique {features.frac_unique:.3f})",
                features,
            )
        if features.frac_unique < self.repeat_threshold:
            return SelectionDecision(
                self.repeat_codec,
                f"repeat-heavy: frac_unique {features.frac_unique:.3f} < "
                f"{self.repeat_threshold}",
                features,
            )
        if features.lag1_autocorr >= self.smooth_threshold:
            return SelectionDecision(
                self.smooth_codec,
                f"smooth: lag-1 autocorr {features.lag1_autocorr:.3f} >= "
                f"{self.smooth_threshold}",
                features,
            )
        return SelectionDecision(
            self.default_codec,
            f"no structure detected (autocorr {features.lag1_autocorr:.3f}, "
            f"frac_unique {features.frac_unique:.3f})",
            features,
        )


def pick_smallest(
    candidates: tuple[str, ...], sizes: dict[str, int]
) -> str:
    """Smallest trial output wins; ties break toward the earlier candidate.

    Exposed separately so the tie-breaking contract is directly
    testable: selection must not depend on dict ordering or float
    noise, only on ``(size, candidate position)``.
    """
    if not candidates:
        raise SelectionError("measured selection requires at least one candidate")
    missing = [name for name in candidates if name not in sizes]
    if missing:
        raise SelectionError(f"no trial size for candidate(s): {missing}")
    return min(candidates, key=lambda name: (sizes[name], candidates.index(name)))


@dataclass(frozen=True)
class MeasuredPolicy(SelectionPolicy):
    """Trial-compress a sample prefix with every candidate; keep the best.

    ``sample_elements`` bounds the per-chunk cost: only the leading
    sample is trial-compressed, then the winner compresses the full
    chunk.  Deterministic by construction — same bytes, same trial
    sizes, same tie-break.
    """

    candidates: tuple[str, ...] = DEFAULT_CANDIDATES
    sample_elements: int = 2048

    name = "measured"

    def __post_init__(self) -> None:
        object.__setattr__(self, "candidates", tuple(self.candidates))
        if not self.candidates:
            raise SelectionError("MeasuredPolicy requires a non-empty candidate set")
        if self.sample_elements < 1:
            raise SelectionError("sample_elements must be positive")

    def trial_sizes(self, chunk: np.ndarray) -> dict[str, int]:
        """Compressed size of the sample prefix under every candidate."""
        from repro.api.frames import encode_payload

        sample = np.ascontiguousarray(chunk).ravel()[: self.sample_elements]
        return {
            name: len(encode_payload(codec_instance(name), sample))
            for name in self.candidates
        }

    def decide(self, chunk: np.ndarray) -> SelectionDecision:
        sizes = self.trial_sizes(chunk)
        winner = pick_smallest(self.candidates, sizes)
        ranked = ", ".join(
            f"{name}={sizes[name]}B" for name in sorted(sizes, key=sizes.get)
        )
        return SelectionDecision(
            winner,
            f"smallest {self.sample_elements}-element trial: {ranked}",
            extract_features(chunk),
        )


@dataclass(frozen=True)
class LearnedPolicy(SelectionPolicy):
    """Nearest-neighbour lookup in a feature → winner table.

    ``rows`` holds ``(winner, feature_vector)`` pairs in a stable order
    (the training table sorts by dataset name); features are compared
    after per-dimension scaling by the table's standard deviation, so
    no single unit dominates the distance.  Fit offline with
    :mod:`repro.select.train` / ``fcbench select train``.
    """

    rows: tuple[tuple[str, tuple[float, ...]], ...] = ()
    sample_elements: int = FEATURE_SAMPLE_ELEMENTS
    #: Per-dimension scale (table stddev, floored); computed at build.
    scales: tuple[float, ...] = field(default=())

    name = "learned"

    def __post_init__(self) -> None:
        if not self.rows:
            raise SelectionError(
                "LearnedPolicy requires a trained table "
                "(run `fcbench select train` first)"
            )
        width = len(FEATURE_ORDER)
        for winner, vector in self.rows:
            if len(vector) != width:
                raise SelectionError(
                    f"table row for {winner!r} has {len(vector)} features, "
                    f"expected {width}"
                )
        if not self.scales:
            matrix = np.asarray([vector for _, vector in self.rows], dtype=float)
            spread = matrix.std(axis=0)
            spread[spread < 1e-9] = 1.0
            object.__setattr__(self, "scales", tuple(float(s) for s in spread))

    @property
    def candidates(self) -> tuple[str, ...]:  # type: ignore[override]
        return tuple(sorted({winner for winner, _ in self.rows}))

    def decide(self, chunk: np.ndarray) -> SelectionDecision:
        features = extract_features(chunk, self.sample_elements)
        vector = np.asarray(features.numeric_vector(), dtype=float)
        scales = np.asarray(self.scales, dtype=float)
        best_index = 0
        best_distance = float("inf")
        for index, (_, row_vector) in enumerate(self.rows):
            delta = (vector - np.asarray(row_vector, dtype=float)) / scales
            distance = float((delta * delta).sum())
            if distance < best_distance:
                best_distance = distance
                best_index = index
        winner = self.rows[best_index][0]
        return SelectionDecision(
            winner,
            f"nearest training row #{best_index} "
            f"(scaled distance {best_distance:.3f})",
            features,
        )


def resolve_policy(policy, **options) -> SelectionPolicy:
    """Turn a policy name or instance into a :class:`SelectionPolicy`.

    ``options`` forward to the named policy's constructor (e.g.
    ``candidates=``/``sample_elements=`` for ``measured``,
    ``table_path=`` for ``learned``).
    """
    if isinstance(policy, SelectionPolicy):
        if options:
            raise SelectionError(
                "policy options apply only when naming a policy, "
                "not when passing an instance"
            )
        return policy
    if policy == "heuristic":
        return HeuristicPolicy(**options)
    if policy == "measured":
        return MeasuredPolicy(**options)
    if policy == "learned":
        from repro.select.train import load_policy

        return load_policy(options.pop("table_path", None), **options)
    if policy == "online":
        from repro.select.online import OnlinePolicy

        return OnlinePolicy(**options)
    raise SelectionError(
        f"unknown selection policy {policy!r}; known: {', '.join(POLICY_NAMES)}"
    )
