"""Observability: distributed tracing spans and structured logging.

The sans-I/O core lives in :mod:`repro.obs.spans` (span model, wire
context, :class:`SpanRecorder` ring buffer) and
:mod:`repro.obs.logging` (one-JSON-object-per-line formatter and the
slow-request sampler).  The service layer owns the I/O ends: the
``FLAG_TRACE`` protocol flag carries :class:`TraceContext` between
processes, the gateway's ``/trace`` endpoints and ``fcbench trace``
read the recorder back out.
"""

from repro.obs.logging import (
    JsonFormatter,
    SlowRequestSampler,
    configure_logging,
    get_logger,
)
from repro.obs.spans import (
    NULL_SPAN,
    SPAN_ID_BYTES,
    TRACE_ID_BYTES,
    WIRE_CONTEXT_BYTES,
    Span,
    SpanRecorder,
    TraceContext,
    build_trace_tree,
    chrome_trace_events,
    new_span_id,
    new_trace_id,
)

__all__ = [
    "NULL_SPAN",
    "SPAN_ID_BYTES",
    "Span",
    "SpanRecorder",
    "TRACE_ID_BYTES",
    "TraceContext",
    "WIRE_CONTEXT_BYTES",
    "JsonFormatter",
    "SlowRequestSampler",
    "build_trace_tree",
    "chrome_trace_events",
    "configure_logging",
    "get_logger",
    "new_span_id",
    "new_trace_id",
]
