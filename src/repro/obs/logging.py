"""Structured logging: one JSON object per line, trace-correlated.

The service and cluster layers log through stdlib :mod:`logging` with
:class:`JsonFormatter` attached, so every line is a machine-parseable
JSON object carrying the standard envelope (``ts``, ``level``,
``logger``, ``event``) plus whatever correlation fields the call site
passed via ``extra=`` — by convention ``trace_id``, ``tenant``,
``request_id``, and ``node``.  That makes a grep for one trace id
return the log lines *and* (via ``/trace/<id>``) the span tree of the
same request.

Usage:

    >>> import io, logging
    >>> log = get_logger("repro.test.doc")
    >>> stream = io.StringIO()
    >>> configure_logging(stream=stream, logger=log)
    >>> log.info("request done", extra={"trace_id": "ab" * 16})
    >>> '"event": "request done"' in stream.getvalue()
    True
    >>> '"trace_id"' in stream.getvalue()
    True

:class:`SlowRequestSampler` implements the "log only what hurts"
policy: request completions are logged only above a latency threshold
(and then only every Nth to bound log volume under a latency storm),
because logging every request at production rates is itself a p99
regression.
"""

from __future__ import annotations

import json
import logging
import sys
import threading
import time

__all__ = [
    "JsonFormatter",
    "SlowRequestSampler",
    "configure_logging",
    "get_logger",
]

#: Attributes every LogRecord carries; anything else on the record was
#: passed by the call site via ``extra=`` and belongs in the envelope.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """Render each record as one sorted-key JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        entry = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_"):
                continue
            if not isinstance(value, (str, int, float, bool, type(None))):
                value = str(value)
            entry[key] = value
        if record.exc_info and record.exc_info[1] is not None:
            entry["error"] = repr(record.exc_info[1])
        return json.dumps(entry, sort_keys=True)


def get_logger(name: str = "repro") -> logging.Logger:
    """The named logger; call sites never touch handlers themselves."""
    return logging.getLogger(name)


def configure_logging(
    *,
    stream=None,
    level: int = logging.INFO,
    logger: logging.Logger | None = None,
) -> logging.Logger:
    """Attach the JSON formatter to ``logger`` (default: ``repro``).

    Idempotent: an existing JSON handler on the logger is replaced, not
    duplicated, so repeated server starts in one process (tests, the
    loadgen's self-served mode) do not multiply log lines.  The logger
    stops propagating to the root logger — the service owns its stream
    (stderr by default) and pytest's root capture should not duplicate
    it.
    """
    logger = logger if logger is not None else get_logger()
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter())
    handler._repro_json = True  # marker for idempotent reconfiguration
    for existing in list(logger.handlers):
        if getattr(existing, "_repro_json", False):
            logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger


class SlowRequestSampler:
    """Log request completions only above a latency threshold.

    ``threshold_ms`` draws the slow line; ``sample_every`` keeps a
    latency storm from turning the log into the bottleneck (only every
    Nth slow request is written, but all of them are counted, and the
    running counters ride on each emitted line).  Thread-safe: the
    executor callback path and the event loop may both observe.
    """

    def __init__(
        self,
        logger: logging.Logger | None = None,
        *,
        threshold_ms: float = 100.0,
        sample_every: int = 1,
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self._logger = logger if logger is not None else get_logger()
        self.threshold_ms = threshold_ms
        self.sample_every = sample_every
        self._lock = threading.Lock()
        self.observed = 0
        self.slow = 0
        self.emitted = 0

    def observe(self, op: str, seconds: float, **fields) -> bool:
        """Returns True when the observation was written to the log."""
        millis = seconds * 1e3
        with self._lock:
            self.observed += 1
            if millis < self.threshold_ms:
                return False
            self.slow += 1
            if (self.slow - 1) % self.sample_every:
                return False
            self.emitted += 1
            slow, observed = self.slow, self.observed
        extra = {k: v for k, v in fields.items() if v is not None}
        extra.update(
            op=op,
            duration_ms=round(millis, 3),
            threshold_ms=self.threshold_ms,
            slow_count=slow,
            observed_count=observed,
        )
        self._logger.warning("slow request", extra=extra)
        return True

    def stats(self) -> dict:
        with self._lock:
            return {
                "threshold_ms": self.threshold_ms,
                "sample_every": self.sample_every,
                "observed": self.observed,
                "slow": self.slow,
                "emitted": self.emitted,
            }


# Re-exported for call sites that want a timestamp helper consistent
# with the formatter's ``ts`` field.
now = time.time
