"""Sans-I/O distributed-tracing primitives.

The span model is deliberately tiny and dependency-free: a trace is a
16-byte random id, every span inside it an 8-byte random id with an
optional parent, and a span itself is just ``(name, start, duration,
attributes, status)``.  Nothing in this module does I/O — the service
layer decides where context comes from (the ``FLAG_TRACE`` wire flag),
where spans go (:class:`SpanRecorder`, a lock-protected bounded ring
buffer mirroring :class:`~repro.service.metrics.ServiceMetrics`'
single-lock snapshot discipline), and who reads them (the gateway's
``/trace`` endpoints, ``fcbench trace``, and the cluster supervisor's
per-node aggregation).

Ids are hex strings in memory (JSON- and log-friendly) and fixed-width
bytes on the wire: :meth:`TraceContext.to_wire` packs exactly
``16 + 8 = 24`` bytes, which is what the protocol layer appends after
the tenant field when ``FLAG_TRACE`` is set.

Durations are measured on the monotonic clock; the wall-clock start is
kept alongside so spans recorded by different processes on the same
host (the ProcessPoolExecutor workers) order correctly in one tree.

Cost discipline: tracing must stay under a 2% throughput tax, so a
disabled recorder does one attribute load and returns a shared no-op
span — no allocation, no lock, no clock read.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque

__all__ = [
    "NULL_SPAN",
    "SPAN_ID_BYTES",
    "Span",
    "SpanRecorder",
    "TRACE_ID_BYTES",
    "TraceContext",
    "WIRE_CONTEXT_BYTES",
    "build_trace_tree",
    "chrome_trace_events",
    "new_span_id",
    "new_trace_id",
]

#: Wire widths for the FLAG_TRACE header fields (fixed, not varint:
#: random ids do not compress and fixed offsets keep parsing trivial).
TRACE_ID_BYTES = 16
SPAN_ID_BYTES = 8
WIRE_CONTEXT_BYTES = TRACE_ID_BYTES + SPAN_ID_BYTES


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id (16 random bytes)."""
    return os.urandom(TRACE_ID_BYTES).hex()


def new_span_id() -> str:
    """A fresh 16-hex-char span id (8 random bytes)."""
    return os.urandom(SPAN_ID_BYTES).hex()


class TraceContext:
    """The propagated part of a trace: which trace, which parent span.

    Immutable value object; this is what crosses process boundaries —
    serialized to 24 fixed bytes for the wire (:meth:`to_wire`) and to
    a plain picklable tuple for the ProcessPoolExecutor hop
    (:meth:`to_tuple`).
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        if len(trace_id) != TRACE_ID_BYTES * 2:
            raise ValueError(f"bad trace id {trace_id!r}")
        if len(span_id) != SPAN_ID_BYTES * 2:
            raise ValueError(f"bad span id {span_id!r}")
        self.trace_id = trace_id
        self.span_id = span_id

    @classmethod
    def new(cls) -> "TraceContext":
        return cls(new_trace_id(), new_span_id())

    def to_wire(self) -> bytes:
        """Pack to the 24-byte FLAG_TRACE field (trace id ++ span id)."""
        return bytes.fromhex(self.trace_id) + bytes.fromhex(self.span_id)

    @classmethod
    def from_wire(cls, blob: bytes) -> "TraceContext":
        if len(blob) != WIRE_CONTEXT_BYTES:
            raise ValueError(
                f"trace context needs {WIRE_CONTEXT_BYTES} bytes, "
                f"got {len(blob)}"
            )
        return cls(blob[:TRACE_ID_BYTES].hex(), blob[TRACE_ID_BYTES:].hex())

    def to_tuple(self) -> tuple:
        return (self.trace_id, self.span_id)

    @classmethod
    def from_tuple(cls, pair) -> "TraceContext | None":
        if pair is None:
            return None
        return cls(pair[0], pair[1])

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TraceContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))

    def __repr__(self) -> str:
        return f"TraceContext({self.trace_id!r}, {self.span_id!r})"


_ATTR_TYPES = (str, int, float, bool)


class Span:
    """One timed operation inside a trace.

    Spans are context managers: ``with recorder.span("parse") as span:``
    measures the block on the monotonic clock and records the span on
    exit (status ``"error"`` with the exception repr if the block
    raised).  Attributes are typed — str/int/float/bool only — so every
    span snapshot is JSON-clean by construction.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "duration",
        "attributes",
        "status",
        "_recorder",
        "_t0",
    )

    def __init__(
        self,
        name: str,
        *,
        trace_id: str,
        span_id: str | None = None,
        parent_id: str | None = None,
        attributes: dict | None = None,
        recorder: "SpanRecorder | None" = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id or new_span_id()
        self.parent_id = parent_id
        self.start = time.time()
        self.duration = 0.0
        self.attributes: dict = {}
        self.status = "ok"
        self._recorder = recorder
        self._t0 = time.monotonic()
        if attributes:
            for key, value in attributes.items():
                self.set_attribute(key, value)

    @property
    def context(self) -> TraceContext:
        """Context a child span (possibly remote) should inherit."""
        return TraceContext(self.trace_id, self.span_id)

    def set_attribute(self, key: str, value) -> None:
        if value is None:
            return
        if not isinstance(value, _ATTR_TYPES):
            value = str(value)
        self.attributes[key] = value

    def set_error(self, error) -> None:
        self.status = "error"
        self.set_attribute("error", repr(error) if error else "error")

    def finish(self) -> "Span":
        self.duration = time.monotonic() - self._t0
        if self._recorder is not None:
            self._recorder.record(self)
            self._recorder = None
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self.set_error(exc)
        self.finish()

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration_ms": self.duration * 1e3,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        span = cls(
            record["name"],
            trace_id=record["trace_id"],
            span_id=record.get("span_id"),
            parent_id=record.get("parent_id"),
        )
        span.start = float(record.get("start", span.start))
        span.duration = float(record.get("duration_ms", 0.0)) / 1e3
        span.status = record.get("status", "ok")
        for key, value in (record.get("attributes") or {}).items():
            span.set_attribute(key, value)
        return span


class _NullSpan:
    """The no-op span a disabled recorder hands out.

    Absorbs the whole :class:`Span` surface without allocating, so
    instrumented call sites never branch on "is tracing on?" — they
    always get *a* span, just a free one when tracing is off.
    """

    __slots__ = ()
    trace_id = ""
    span_id = ""
    parent_id = None
    name = ""
    status = "ok"
    duration = 0.0
    context = None
    attributes: dict = {}

    def set_attribute(self, key: str, value) -> None:
        pass

    def set_error(self, error) -> None:
        pass

    def finish(self) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def __bool__(self) -> bool:
        return False


NULL_SPAN = _NullSpan()


class SpanRecorder:
    """Lock-protected bounded ring buffer of finished spans.

    One per process.  Mirrors :class:`ServiceMetrics`' concurrency
    contract: a single lock covers every mutation and every read, so a
    snapshot racing the recording thread is never torn.  The ring
    (``collections.deque(maxlen=capacity)``) drops the oldest span on
    overflow and counts the drop, so a long-lived server exposes its
    most recent window plus an honest ``dropped`` counter rather than
    growing without bound.
    """

    def __init__(self, capacity: int = 2048, *, enabled: bool = True) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self._lock = threading.Lock()
        self._spans: deque = deque(maxlen=capacity)
        self._recorded = 0
        self._dropped = 0

    # -- recording -----------------------------------------------------
    def span(
        self,
        name: str,
        *,
        parent: "TraceContext | Span | None" = None,
        attributes: dict | None = None,
    ):
        """Open a span; returns :data:`NULL_SPAN` when disabled.

        ``parent`` may be a :class:`TraceContext` (remote parent, e.g.
        from the wire) or a live :class:`Span` (local parent); with no
        parent a fresh trace id is minted — this span is a root.
        """
        if not self.enabled:
            return NULL_SPAN
        if parent is None:
            trace_id, parent_id = new_trace_id(), None
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        return Span(
            name,
            trace_id=trace_id,
            parent_id=parent_id,
            attributes=attributes,
            recorder=self,
        )

    def record(self, span: Span) -> None:
        if not self.enabled:
            return
        with self._lock:
            if len(self._spans) == self.capacity:
                self._dropped += 1
            self._spans.append(span)
            self._recorded += 1

    def record_dicts(self, records) -> int:
        """Ingest span dicts produced elsewhere (pool workers, peers)."""
        count = 0
        for record in records:
            self.record(Span.from_dict(record))
            count += 1
        return count

    # -- reading -------------------------------------------------------
    def snapshot(self, limit: int | None = None) -> list:
        """JSON-ready span dicts, oldest first (most recent window)."""
        with self._lock:
            spans = list(self._spans)
        if limit is not None and limit >= 0:
            spans = spans[-limit:]
        return [span.to_dict() for span in spans]

    def trace_ids(self) -> list:
        """Distinct trace ids in the ring, most recently touched last."""
        seen: dict = {}
        with self._lock:
            spans = list(self._spans)
        for index, span in enumerate(spans):
            seen[span.trace_id] = index
        return [tid for tid, _ in sorted(seen.items(), key=lambda kv: kv[1])]

    def trace(self, trace_id: str) -> list:
        """All recorded spans of one trace, start-ordered, as dicts."""
        with self._lock:
            spans = [s for s in self._spans if s.trace_id == trace_id]
        spans.sort(key=lambda s: s.start)
        return [span.to_dict() for span in spans]

    def stats(self) -> dict:
        with self._lock:
            return {
                "enabled": self.enabled,
                "capacity": self.capacity,
                "buffered": len(self._spans),
                "recorded": self._recorded,
                "dropped": self._dropped,
            }

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


def build_trace_tree(spans) -> list:
    """Nest flat span dicts into parent→children trees.

    Returns the list of roots (spans whose parent is absent from the
    set — either true roots or spans whose parent fell out of the
    ring), each with a ``children`` list, recursively start-ordered.
    Cycles cannot occur with random ids, but a defensive visited-set
    keeps malformed input from recursing forever.
    """
    by_id = {span["span_id"]: dict(span, children=[]) for span in spans}
    roots = []
    for span in by_id.values():
        parent = by_id.get(span.get("parent_id"))
        if parent is not None and parent is not span:
            parent["children"].append(span)
        else:
            roots.append(span)

    def _sort(nodes, seen):
        nodes.sort(key=lambda s: s["start"])
        for node in nodes:
            if node["span_id"] in seen:
                node["children"] = []
                continue
            seen.add(node["span_id"])
            _sort(node["children"], seen)

    _sort(roots, set())
    return roots


def chrome_trace_events(spans) -> list:
    """Span dicts → Chrome ``chrome://tracing`` / Perfetto events.

    Complete ("X"-phase) events; the process id slot carries the node
    that recorded the span (attribute ``node``, default 0) so a merged
    cluster trace renders one lane per node.
    """
    events = []
    for span in spans:
        attrs = span.get("attributes") or {}
        events.append(
            {
                "name": span["name"],
                "cat": span.get("status", "ok"),
                "ph": "X",
                "ts": span["start"] * 1e6,
                "dur": span.get("duration_ms", 0.0) * 1e3,
                "pid": attrs.get("node", attrs.get("node_id", 0)),
                "tid": span["trace_id"][:8],
                "args": dict(
                    attrs,
                    trace_id=span["trace_id"],
                    span_id=span["span_id"],
                    parent_id=span.get("parent_id") or "",
                ),
            }
        )
    return events
