"""Synthetic dataset generators standing in for the Table 3 corpus.

Each recipe reproduces the statistical structure that the paper
identifies as the driver of compressibility in its domain:

* **HPC** fields are smooth and strongly autocorrelated along their grid
  axes (good for Lorenzo/delta predictors), with white mantissa noise
  controlling how many low bits stay incompressible.
* **Time series** carry limited decimal precision (sensor quantization),
  periodic structure, and value repetition (good for BUFF, Chimp, and
  dictionary methods).
* **Observation** images combine smooth background, point sources, and
  read noise; HDR panoramas are tonal (few distinct values).
* **Database** columns are pattern-free numerics — money amounts,
  quantities, rates — whose only redundancy is value repetition, which
  is why the paper finds dictionary methods dominate the DB domain.

All generators are deterministic in (dataset name, seed).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.data.catalog import DatasetSpec
from repro.errors import DatasetError

__all__ = ["generate", "available_generators"]


def _fractal_field(
    shape: tuple[int, ...], octaves: int, rng: np.random.Generator
) -> np.ndarray:
    """Multi-octave smooth random field on an arbitrary grid.

    Coarse Gaussian grids are zoomed to the target shape and summed with
    amplitudes halving per octave — a cheap spectral-synthesis fractal
    with the long-range correlations scientific fields exhibit.
    """
    field = np.zeros(shape, dtype=np.float64)
    for octave in range(octaves):
        coarse_shape = tuple(
            max(2, dim // (2 ** (octaves - octave))) for dim in shape
        )
        coarse = rng.standard_normal(coarse_shape)
        zoom = [t / c for t, c in zip(shape, coarse_shape)]
        field += ndimage.zoom(coarse, zoom, order=1, mode="nearest") / (
            2.0**octave
        )
    return field


def _gen_trajectory(spec, extent, rng):
    """1-D simulation trace: smooth motion plus mantissa-level noise.

    ``decimals`` (optional) quantizes the trace, reproducing solver
    outputs stored at fixed decimal precision — the property that lets
    BUFF exceed 2x on num-brain/num-control in the paper's Table 4.
    """
    n = extent[0]
    roughness = spec.params.get("roughness", 0.5)
    scale = spec.params.get("scale", 1.0)
    decimals = spec.params.get("decimals")
    smooth = np.cumsum(rng.standard_normal(n)) / np.sqrt(max(n, 1))
    wobble = rng.standard_normal(n) * roughness
    trace = (smooth + wobble) * scale
    if decimals is not None:
        trace = np.round(trace, decimals)
    return trace.reshape(extent)


def _gen_smooth_field(spec, extent, rng):
    octaves = spec.params.get("octaves", 4)
    noise = spec.params.get("noise", 1e-4)
    offset = spec.params.get("offset", 0.0)
    field = _fractal_field(extent, octaves, rng)
    if noise:
        field += rng.standard_normal(extent) * noise
    return field + offset


def _gen_sparse_field(spec, extent, rng):
    """Mostly-zero field with a few smooth structures (astro-mhd)."""
    fill = spec.params.get("fill", 0.02)
    octaves = spec.params.get("octaves", 2)
    field = _fractal_field(extent, octaves, rng)
    threshold = np.quantile(field, 1.0 - fill)
    sparse = np.where(field > threshold, field - threshold, 0.0)
    return sparse


def _gen_wavefield(spec, extent, rng):
    """Radial standing wave (the `wave` solver benchmark)."""
    frequency = spec.params.get("frequency", 6.0)
    noise = spec.params.get("noise", 1e-6)
    axes = [np.linspace(-1.0, 1.0, dim) for dim in extent]
    grids = np.meshgrid(*axes, indexing="ij")
    radius = np.sqrt(sum(g**2 for g in grids))
    field = np.sin(frequency * np.pi * radius) / (1.0 + radius)
    if noise:
        field += rng.standard_normal(extent) * noise
    return field


def _gen_sensor(spec, extent, rng):
    """Quantized periodic sensor stream (temperature, gas, IMU...)."""
    decimals = spec.params.get("decimals", 2)
    period = spec.params.get("period", 100.0)
    amplitude = spec.params.get("amplitude", 1.0)
    level = spec.params.get("level", 0.0)
    noise_frac = spec.params.get("noise_frac", 0.02)
    n = extent[0]
    columns = extent[1] if len(extent) > 1 else 1
    t = np.arange(n, dtype=np.float64)
    out = np.empty((n, columns), dtype=np.float64)
    for col in range(columns):
        phase = rng.uniform(0, 2 * np.pi)
        drift = np.cumsum(rng.standard_normal(n)) * (amplitude / period / 10.0)
        wave = amplitude * np.sin(2 * np.pi * t / period + phase)
        noise = rng.standard_normal(n) * amplitude * noise_frac
        out[:, col] = level + wave + drift + noise
    if decimals is not None:
        out = np.round(out, decimals)
    return out.reshape(extent)


def _gen_market(spec, extent, rng):
    """Anonymized market features: full-precision, weakly structured."""
    volatility = spec.params.get("volatility", 0.02)
    n, columns = extent if len(extent) > 1 else (extent[0], 1)
    out = rng.standard_normal((n, columns))
    # Weak factor structure: a few latent drivers plus dominant noise.
    factors = rng.standard_normal((n, 3)) * volatility
    loadings = rng.standard_normal((3, columns))
    out += factors @ loadings
    return out.reshape(extent)


def _gen_prices(spec, extent, rng):
    """Transactional prices: few decimals, heavy value repetition."""
    decimals = spec.params.get("decimals", 2)
    mean = spec.params.get("mean", 10.0)
    spread = spec.params.get("spread", 5.0)
    outlier_rate = spec.params.get("outlier_rate", 0.0)
    n = extent[0]
    columns = extent[1] if len(extent) > 1 else 1
    out = np.empty((n, columns), dtype=np.float64)
    for col in range(columns):
        # A popular-value backbone (fare grid) plus a lognormal tail.
        popular = np.round(
            mean + spread * rng.standard_normal(64), decimals
        )
        choice = rng.integers(0, len(popular), n)
        tail = rng.lognormal(0.0, 0.6, n) * spread * 0.3
        use_tail = rng.random(n) < 0.25
        column = np.where(use_tail, popular[choice] + tail, popular[choice])
        column = np.round(np.abs(column), decimals)
        if outlier_rate:
            # Full-precision entries (surcharges, pro-rated amounts)
            # break the decimal grid, as real transactional data does.
            wild = rng.random(n) < outlier_rate
            column = np.where(
                wild, column + rng.standard_normal(n) * spread * 0.01, column
            )
        out[:, col] = column
    return out.reshape(extent)


def _gen_starfield(spec, extent, rng):
    """Telescope frame: background + Gaussian point sources + read noise."""
    density = spec.params.get("density", 2e-3)
    background = spec.params.get("background", 0.1)
    read_noise = spec.params.get("read_noise", 0.02)
    psf_sigma = spec.params.get("psf_sigma", 1.2)
    image_shape = extent[-2:]
    frames = 1
    for dim in extent[:-2]:
        frames *= dim
    out = np.empty((frames, *image_shape), dtype=np.float64)
    n_pixels = image_shape[0] * image_shape[1]
    n_stars = max(1, int(n_pixels * density))
    for frame in range(frames):
        img = np.full(image_shape, background, dtype=np.float64)
        img += rng.standard_normal(image_shape) * read_noise
        rows = rng.integers(0, image_shape[0], n_stars)
        cols = rng.integers(0, image_shape[1], n_stars)
        fluxes = rng.lognormal(1.0, 1.2, n_stars)
        img[rows, cols] += fluxes
        # The smoothing pass turns the deltas into compact PSFs and gives
        # the background the pixel-to-pixel correlation real detector
        # flats exhibit.
        img = ndimage.gaussian_filter(img, sigma=psf_sigma, mode="nearest")
        out[frame] = img
    return out.reshape(extent)


def _gen_hdr_image(spec, extent, rng):
    """HDR panorama: tonal radiance map with few distinct values."""
    dynamic_range = spec.params.get("dynamic_range", 4.0)
    detail = spec.params.get("detail", 0.2)
    quantized = spec.params.get("quantized", True)
    luminance = _fractal_field(extent, 5, rng)
    luminance += rng.standard_normal(extent) * detail
    radiance = np.exp2(
        (luminance - luminance.min())
        / max(float(np.ptp(luminance)), 1e-9)
        * dynamic_range
    )
    if quantized:
        # Radiance assembled from 8-bit exposures: ~1024 distinct levels.
        levels = 1024
        lo, hi = radiance.min(), radiance.max()
        radiance = np.round(
            (radiance - lo) / max(hi - lo, 1e-9) * levels
        ) / levels * (hi - lo) + lo
        radiance = radiance.astype(np.float32).astype(np.float64)
    return radiance


def _gen_spectral_cube(spec, extent, rng):
    """IFU spectral cube: per-pixel continuum + emission lines + noise."""
    lines = spec.params.get("lines", 16)
    noise = spec.params.get("noise", 0.3)
    n_channels = extent[0]
    spatial = extent[1:]
    continuum = _fractal_field(spatial, 3, rng) + 2.0
    channels = np.linspace(0.0, 1.0, n_channels)
    cube = np.empty(extent, dtype=np.float64)
    line_centers = rng.uniform(0, 1, lines)
    line_widths = rng.uniform(0.002, 0.01, lines)
    spectrum = np.ones(n_channels)
    for center, width in zip(line_centers, line_widths):
        spectrum += 3.0 * np.exp(-0.5 * ((channels - center) / width) ** 2)
    for k in range(n_channels):
        cube[k] = continuum * spectrum[k] + rng.standard_normal(spatial) * noise
    return cube


def _gen_tpc_money(spec, extent, rng):
    """TPC money columns: uniform amounts at cent granularity."""
    low = spec.params.get("low", 1.0)
    high = spec.params.get("high", 100000.0)
    decimals = spec.params.get("decimals", 2)
    scale = 10**decimals
    cents = rng.integers(int(low * scale), int(high * scale), extent)
    return cents.astype(np.float64) / scale


def _gen_tpc_mixed(spec, extent, rng):
    """TPC fact-table numerics: money, quantity, and rate columns.

    ``qty_high`` and ``rate_levels`` control how repetitive the
    non-money columns are: TPC-H lineitem quantities span 1-50 and
    discounts take 11 values (low entropy, Table 3 reports 8.87 bits),
    while the TPC-DS views are far more diverse (~17 bits).
    """
    decimals = spec.params.get("decimals", 2)
    money_high = spec.params.get("money_high", 1_000_000)
    qty_high = spec.params.get("qty_high", 100)
    rate_levels = spec.params.get("rate_levels", 100)
    n, columns = extent
    out = np.empty((n, columns), dtype=np.float64)
    scale = 10**decimals
    for col in range(columns):
        kind = col % 3
        if kind == 0:  # money amounts
            cents = rng.integers(100, money_high, n)
            out[:, col] = cents.astype(np.float64) / scale
        elif kind == 1:  # integer quantities
            out[:, col] = rng.integers(1, qty_high, n).astype(np.float64)
        else:  # rates/discounts in [0, 1)
            out[:, col] = (
                rng.integers(0, rate_levels, n).astype(np.float64) / rate_levels
            )
    return out


_GENERATORS = {
    "trajectory": _gen_trajectory,
    "smooth_field": _gen_smooth_field,
    "sparse_field": _gen_sparse_field,
    "wavefield": _gen_wavefield,
    "sensor": _gen_sensor,
    "market": _gen_market,
    "prices": _gen_prices,
    "starfield": _gen_starfield,
    "hdr_image": _gen_hdr_image,
    "spectral_cube": _gen_spectral_cube,
    "tpc_money": _gen_tpc_money,
    "tpc_mixed": _gen_tpc_mixed,
}


def available_generators() -> list[str]:
    """Names of all generator recipes."""
    return sorted(_GENERATORS)


def generate(
    spec: DatasetSpec, extent: tuple[int, ...], seed: int = 0
) -> np.ndarray:
    """Materialize a synthetic stand-in for ``spec`` at ``extent``.

    The random stream is keyed on the dataset name and ``seed`` so every
    dataset is deterministic and distinct.
    """
    recipe = _GENERATORS.get(spec.generator)
    if recipe is None:
        raise DatasetError(
            f"dataset {spec.name!r} names unknown generator {spec.generator!r}"
        )
    key = np.frombuffer(spec.name.encode(), dtype=np.uint8)
    rng = np.random.default_rng([seed, *key.tolist()])
    array = recipe(spec, extent, rng)
    return np.ascontiguousarray(array.astype(spec.numpy_dtype))
