"""Entropy estimators for dataset characterization (Table 3's column).

The paper reports a per-dataset "entropy" that matches the Shannon
entropy of the exact value distribution (in bits per value): nearly-
distinct datasets approach ``log2(n)`` while tonal/sparse datasets (e.g.
astro-mhd at 0.97) sit near zero.  Byte-level entropy is also provided
for codec-oriented analysis.
"""

from __future__ import annotations

import numpy as np

__all__ = ["value_entropy", "byte_entropy"]


def value_entropy(array: np.ndarray) -> float:
    """Shannon entropy of the exact value multiset, in bits per value."""
    if array.size == 0:
        return 0.0
    # Compare bit patterns so NaNs with different payloads stay distinct.
    bits = array.ravel().view(
        np.uint32 if array.dtype == np.float32 else np.uint64
    )
    _, counts = np.unique(bits, return_counts=True)
    p = counts / counts.sum()
    return float(-(p * np.log2(p)).sum())


def byte_entropy(array: np.ndarray) -> float:
    """Shannon entropy of the raw byte stream, in bits per byte."""
    if array.size == 0:
        return 0.0
    counts = np.bincount(
        np.frombuffer(array.tobytes(), dtype=np.uint8), minlength=256
    )
    p = counts[counts > 0] / counts.sum()
    return float(-(p * np.log2(p)).sum())
