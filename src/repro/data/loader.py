"""Dataset materialization with scaling and caching.

The benchmark harness loads every Table 3 dataset at a configurable
element budget (the paper's files span 11 MB to 4 GB; pure-Python codecs
need smaller working sets).  Arrays are cached per (name, budget, seed)
so the many per-table benchmarks do not regenerate data.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.data.catalog import DatasetSpec, get_spec
from repro.data.generators import generate

__all__ = ["load", "load_spec", "DEFAULT_TARGET_ELEMENTS"]

#: Default per-dataset element budget for the scaled benchmark suite.
DEFAULT_TARGET_ELEMENTS = 16_384


@lru_cache(maxsize=64)
def _cached(name: str, target_elements: int, seed: int) -> np.ndarray:
    spec = get_spec(name)
    extent = spec.scaled_extent(target_elements)
    array = generate(spec, extent, seed=seed)
    array.setflags(write=False)
    return array


def load(
    name: str,
    target_elements: int = DEFAULT_TARGET_ELEMENTS,
    seed: int = 0,
) -> np.ndarray:
    """Materialize dataset ``name`` scaled to about ``target_elements``.

    The returned array is read-only and shared across callers; copy it
    before mutating.
    """
    return _cached(name, target_elements, seed)


def load_spec(
    spec: DatasetSpec,
    target_elements: int = DEFAULT_TARGET_ELEMENTS,
    seed: int = 0,
) -> np.ndarray:
    """Materialize from a spec object (convenience wrapper)."""
    return load(spec.name, target_elements, seed)
