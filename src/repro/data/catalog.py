"""The 33-dataset catalog of Table 3.

Every dataset the paper evaluates is described here with its domain,
precision, paper extent, paper byte size, and published value entropy.
The real files (SDRBench, Kaggle, MAST, TPC, ...) are not redistributable
and total ~14 GB, so :mod:`repro.data.generators` synthesizes a stand-in
for each entry that preserves the properties the paper says drive
compressibility: dimensionality, dtype, smoothness/structure, decimal
precision, and value-entropy class.  The ``generator`` field names the
recipe and ``params`` tunes it per dataset.

Scaled extents shrink each dataset to a tractable size while keeping the
aspect structure (a 3-D field stays 3-D); the paper's sizes are kept for
the size-limit logic (GFC's 512 MB bound produces Table 4's "-" cells).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import DatasetError

__all__ = [
    "DatasetSpec",
    "CATALOG",
    "get_spec",
    "dataset_names",
    "domains",
    "CorpusEntry",
    "ExternalCorpus",
    "load_manifest",
    "MANIFEST_VERSION",
]

#: Paper's GFC limit; datasets above it show "-" in Table 4.
GFC_LIMIT_BYTES = 512 * 1024 * 1024


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table 3 plus its synthetic generator recipe."""

    name: str
    domain: str  # "HPC" | "TS" | "OBS" | "DB"
    dtype: str  # "f32" | "f64"
    paper_extent: tuple[int, ...]
    paper_bytes: int
    paper_entropy: float
    generator: str
    params: dict = field(default_factory=dict)

    @property
    def numpy_dtype(self) -> np.dtype:
        return np.dtype(np.float32 if self.dtype == "f32" else np.float64)

    @property
    def ndim(self) -> int:
        return len(self.paper_extent)

    @property
    def exceeds_gfc_limit(self) -> bool:
        """True when the paper-scale dataset breaks GFC's 512 MB bound."""
        return self.paper_bytes > GFC_LIMIT_BYTES

    def scaled_extent(self, target_elements: int) -> tuple[int, ...]:
        """Shrink the paper extent to about ``target_elements``, keeping rank.

        Column-like trailing axes (tables with up to ~160 columns) are
        preserved exactly — shrinking them would destroy the tabular
        structure the DB/TS generators rely on — while the long axes
        shrink proportionally with a floor of 4.
        """
        extent = list(self.paper_extent)
        paper_elements = 1
        for dim in extent:
            paper_elements *= dim
        if paper_elements <= target_elements:
            return self.paper_extent
        keep_last = self.ndim >= 2 and extent[-1] <= 160
        shrink_axes = list(range(self.ndim - 1)) if keep_last else list(
            range(self.ndim)
        )
        fixed = extent[-1] if keep_last else 1
        current = 1
        for axis in shrink_axes:
            current *= extent[axis]
        budget = max(target_elements // fixed, 4)
        ratio = (budget / current) ** (1.0 / len(shrink_axes))
        if ratio < 1.0:
            for axis in shrink_axes:
                extent[axis] = max(4, int(round(extent[axis] * ratio)))
        return tuple(extent)


def _hpc(name, dtype, extent, nbytes, entropy, generator, **params):
    return DatasetSpec(name, "HPC", dtype, extent, nbytes, entropy, generator, params)


def _ts(name, dtype, extent, nbytes, entropy, generator, **params):
    return DatasetSpec(name, "TS", dtype, extent, nbytes, entropy, generator, params)


def _obs(name, dtype, extent, nbytes, entropy, generator, **params):
    return DatasetSpec(name, "OBS", dtype, extent, nbytes, entropy, generator, params)


def _db(name, dtype, extent, nbytes, entropy, generator, **params):
    return DatasetSpec(name, "DB", dtype, extent, nbytes, entropy, generator, params)


CATALOG: tuple[DatasetSpec, ...] = (
    # ------------------------------------------------------------- HPC
    _hpc("msg-bt", "f64", (33298679,), 266_389_432, 23.67,
         "trajectory", roughness=0.35, scale=1e3),
    _hpc("num-brain", "f64", (17730000,), 141_840_000, 23.97,
         "trajectory", roughness=0.55, scale=1.0, decimals=4),
    _hpc("num-control", "f64", (19938093,), 159_504_744, 24.14,
         "trajectory", roughness=0.8, scale=10.0, decimals=3),
    _hpc("rsim", "f32", (2048, 11509), 94_281_728, 18.50,
         "smooth_field", octaves=4, noise=2e-5, offset=1.0),
    _hpc("astro-mhd", "f64", (130, 514, 1026), 548_458_560, 0.97,
         "sparse_field", fill=0.02, octaves=2, noise=0.0),
    _hpc("astro-pt", "f64", (512, 256, 640), 671_088_640, 26.32,
         "smooth_field", octaves=5, noise=1e-7),
    _hpc("miranda3d", "f32", (1024, 1024, 1024), 4_294_967_296, 23.08,
         "smooth_field", octaves=4, noise=2e-6, offset=1.5),
    _hpc("turbulence", "f32", (256, 256, 256), 67_108_864, 23.73,
         "smooth_field", octaves=6, noise=1e-4),
    _hpc("wave", "f32", (512, 512, 512), 536_870_912, 25.27,
         "wavefield", frequency=6.0, noise=1e-6),
    _hpc("hurricane", "f32", (100, 500, 500), 100_000_000, 23.54,
         "smooth_field", octaves=5, noise=5e-5, offset=10.0),
    # -------------------------------------------------------------- TS
    _ts("citytemp", "f32", (2906326,), 11_625_304, 9.43,
        "sensor", decimals=1, period=24.0, amplitude=12.0, level=22.0,
        noise_frac=0.08),
    _ts("ts-gas", "f32", (76863200,), 307_452_800, 13.94,
        "sensor", decimals=None, period=1800.0, amplitude=80.0, level=400.0),
    _ts("phone-gyro", "f64", (13932632, 3), 334_383_168, 14.77,
        "sensor", decimals=3, period=97.0, amplitude=2.0, level=0.0),
    _ts("wesad-chest", "f64", (4255300, 8), 272_339_200, 13.85,
        "sensor", decimals=2, period=700.0, amplitude=1.0, level=0.5),
    _ts("jane-street", "f64", (1664520, 136), 1_810_997_760, 26.07,
        "market", decimals=None, volatility=0.02),
    _ts("nyc-taxi", "f64", (12744846, 7), 713_711_376, 13.17,
        "prices", decimals=2, mean=18.0, spread=12.0, outlier_rate=0.10),
    _ts("gas-price", "f64", (36942486, 3), 886_619_664, 8.66,
        "prices", decimals=3, mean=1.4, spread=0.25, outlier_rate=0.02),
    _ts("solar-wind", "f32", (7571081, 14), 423_980_536, 14.06,
        "sensor", decimals=None, period=400.0, amplitude=30.0, level=300.0),
    # ------------------------------------------------------------- OBS
    _obs("acs-wht", "f32", (7500, 7500), 225_000_000, 20.13,
         "starfield", density=3e-3, background=0.08, read_noise=0.004),
    _obs("hdr-night", "f32", (8192, 16384), 536_870_912, 9.03,
         "hdr_image", dynamic_range=4.0, detail=0.08, quantized=True),
    _obs("hdr-palermo", "f32", (10268, 20536), 843_454_592, 9.34,
         "hdr_image", dynamic_range=5.0, detail=0.12, quantized=True),
    _obs("hst-wfc3-uvis", "f32", (5329, 5110), 108_924_760, 15.61,
         "starfield", density=1.5e-3, background=0.4, read_noise=0.01),
    _obs("hst-wfc3-ir", "f32", (2484, 2417), 24_015_312, 15.04,
         "starfield", density=2e-3, background=0.5, read_noise=0.008),
    _obs("spitzer-irac", "f32", (6456, 6389), 164_989_536, 20.54,
         "starfield", density=4e-3, background=0.12, read_noise=0.006),
    _obs("g24-78-usb", "f32", (2426, 371, 371), 1_335_668_264, 26.02,
         "spectral_cube", lines=24, noise=0.3),
    _obs("jws-mirimage", "f32", (40, 1024, 1032), 169_082_880, 23.16,
         "starfield", density=2e-3, background=6.0, read_noise=1.5,
         psf_sigma=0.6, frames=40),
    # -------------------------------------------------------------- DB
    _db("tpcH-order", "f64", (15000000,), 120_000_000, 23.40,
        "tpc_money", low=800.0, high=600000.0, decimals=2),
    _db("tpcxBB-store", "f64", (8228343, 12), 789_920_928, 16.73,
        "tpc_mixed", decimals=2, qty_high=1000, rate_levels=1000),
    _db("tpcxBB-web", "f64", (8223189, 15), 986_782_680, 17.64,
        "tpc_mixed", decimals=2, qty_high=1000, rate_levels=1000),
    _db("tpcH-lineitem", "f32", (59986051, 4), 959_776_816, 8.87,
        "tpc_mixed", decimals=2, money_high=10_500_000, qty_high=50,
        rate_levels=11),
    _db("tpcDS-catalog", "f32", (2880058, 15), 172_803_480, 17.34,
        "tpc_mixed", decimals=2, key_columns=5),
    _db("tpcDS-store", "f32", (5760749, 12), 276_515_952, 15.17,
        "tpc_mixed", decimals=2, key_columns=4),
    _db("tpcDS-web", "f32", (1439247, 15), 86_354_820, 17.33,
        "tpc_mixed", decimals=2, key_columns=5),
)

_BY_NAME = {spec.name: spec for spec in CATALOG}


def get_spec(name: str) -> DatasetSpec:
    """Look up a dataset descriptor by its Table 3 name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {', '.join(sorted(_BY_NAME))}"
        ) from None


def dataset_names(domain: str | None = None) -> list[str]:
    """All dataset names, optionally filtered by domain."""
    if domain is None:
        return [spec.name for spec in CATALOG]
    return [spec.name for spec in CATALOG if spec.domain == domain]


def domains() -> list[str]:
    """The four evaluation domains, in the paper's order."""
    return ["HPC", "TS", "OBS", "DB"]


# ----------------------------------------------------------------------
# External corpora (real cross-domain data, not generators)
# ----------------------------------------------------------------------
#: Manifest schema version; bumped on incompatible format changes.
MANIFEST_VERSION = 1


@dataclass(frozen=True)
class CorpusEntry:
    """One externally sourced dataset: provenance plus integrity.

    The file itself is *not* redistributed with the repo — the manifest
    records where it comes from (``url``) and what its bytes must hash
    to (``sha256``).  ``filename`` names the local file relative to the
    corpus root; ``.npy`` files load through :func:`numpy.load`, any
    other extension is treated as a raw little-endian array of
    ``dtype`` (the SDRBench / Knorr-corpus convention).
    """

    name: str
    domain: str  # "HPC" | "TS" | "OBS" | "DB"
    dtype: str  # "f32" | "f64"
    url: str
    sha256: str
    filename: str

    @property
    def numpy_dtype(self) -> np.dtype:
        return np.dtype(np.float32 if self.dtype == "f32" else np.float64)


def _validate_entry(raw: dict, index: int) -> CorpusEntry:
    required = ("name", "domain", "dtype", "url", "sha256")
    missing = [key for key in required if not raw.get(key)]
    if missing:
        raise DatasetError(
            f"corpus entry {index}: missing field(s) {', '.join(missing)}"
        )
    if raw["domain"] not in domains():
        raise DatasetError(
            f"corpus entry {raw['name']!r}: unknown domain {raw['domain']!r} "
            f"(expected one of {', '.join(domains())})"
        )
    if raw["dtype"] not in ("f32", "f64"):
        raise DatasetError(
            f"corpus entry {raw['name']!r}: dtype must be f32 or f64, "
            f"got {raw['dtype']!r}"
        )
    digest = str(raw["sha256"]).lower()
    if len(digest) != 64 or any(c not in "0123456789abcdef" for c in digest):
        raise DatasetError(
            f"corpus entry {raw['name']!r}: sha256 must be 64 hex chars"
        )
    return CorpusEntry(
        name=str(raw["name"]),
        domain=str(raw["domain"]),
        dtype=str(raw["dtype"]),
        url=str(raw["url"]),
        sha256=digest,
        filename=str(raw.get("filename") or f"{raw['name']}.bin"),
    )


def load_manifest(path: str | Path) -> list[CorpusEntry]:
    """Parse and validate an external-corpus manifest file.

    Format (JSON)::

        {"version": 1,
         "datasets": [{"name": ..., "domain": ..., "dtype": ...,
                       "url": ..., "sha256": ..., "filename": ...}, ...]}

    Malformed manifests raise :class:`~repro.errors.DatasetError` with
    the offending entry named; duplicate dataset names are rejected so
    grid keyfields stay unambiguous.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise DatasetError(f"cannot read corpus manifest {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise DatasetError(f"corpus manifest {path} is not JSON: {exc}") from exc
    if not isinstance(payload, dict) or "datasets" not in payload:
        raise DatasetError(
            f"corpus manifest {path} must be an object with a 'datasets' list"
        )
    version = payload.get("version")
    if version != MANIFEST_VERSION:
        raise DatasetError(
            f"corpus manifest {path} has version {version!r}; this build "
            f"reads version {MANIFEST_VERSION}"
        )
    entries = [
        _validate_entry(raw, index)
        for index, raw in enumerate(payload["datasets"])
    ]
    seen: set[str] = set()
    for entry in entries:
        if entry.name in seen:
            raise DatasetError(f"corpus manifest {path}: duplicate {entry.name!r}")
        if entry.name in _BY_NAME:
            raise DatasetError(
                f"corpus manifest {path}: {entry.name!r} shadows a catalog "
                "dataset"
            )
        seen.add(entry.name)
    return entries


class ExternalCorpus:
    """Checksum-validated loader over a manifest of external datasets.

    A registered dataset whose file is absent is *offline*, not broken:
    :meth:`available` reports it and the sweep marks its grid cells
    ``skipped`` instead of failed.  A file that exists but fails its
    checksum is broken — loading it raises
    :class:`~repro.errors.DatasetError` rather than silently measuring
    corrupted data.
    """

    def __init__(self, entries: list[CorpusEntry], root: str | Path) -> None:
        self.root = Path(root)
        self.entries = {entry.name: entry for entry in entries}

    @classmethod
    def from_manifest(
        cls, path: str | Path, root: str | Path | None = None
    ) -> "ExternalCorpus":
        """Load a manifest; files default to living beside it."""
        path = Path(path)
        return cls(load_manifest(path), root if root is not None else path.parent)

    def __contains__(self, name: str) -> bool:
        return name in self.entries

    def names(self) -> list[str]:
        return sorted(self.entries)

    def entry(self, name: str) -> CorpusEntry:
        try:
            return self.entries[name]
        except KeyError:
            raise DatasetError(
                f"unknown corpus dataset {name!r}; known: "
                f"{', '.join(self.names()) or '(none)'}"
            ) from None

    def path(self, name: str) -> Path:
        return self.root / self.entry(name).filename

    def available(self, name: str) -> bool:
        """True when the dataset's local file exists (no checksum yet)."""
        return self.path(name).is_file()

    def load(self, name: str) -> np.ndarray:
        """Read, checksum-verify, and decode one dataset.

        The sha256 is checked over the raw file bytes *before* decoding,
        so a truncated download or bit rot surfaces as a typed error,
        never as a silently different measurement.
        """
        entry = self.entry(name)
        path = self.path(name)
        try:
            blob = path.read_bytes()
        except OSError as exc:
            raise DatasetError(
                f"corpus dataset {name!r} is offline ({path}: {exc})"
            ) from exc
        digest = hashlib.sha256(blob).hexdigest()
        if digest != entry.sha256:
            raise DatasetError(
                f"corpus dataset {name!r} failed checksum validation: "
                f"{path} hashes to {digest[:16]}..., manifest says "
                f"{entry.sha256[:16]}..."
            )
        if path.suffix == ".npy":
            import io

            array = np.load(io.BytesIO(blob), allow_pickle=False)
            if array.dtype != entry.numpy_dtype:
                raise DatasetError(
                    f"corpus dataset {name!r}: file holds {array.dtype}, "
                    f"manifest says {entry.dtype}"
                )
        else:
            itemsize = entry.numpy_dtype.itemsize
            if len(blob) % itemsize:
                raise DatasetError(
                    f"corpus dataset {name!r}: {len(blob)} bytes is not a "
                    f"whole number of {entry.dtype} elements"
                )
            array = np.frombuffer(blob, dtype=entry.numpy_dtype).copy()
        array.setflags(write=False)
        return array

    def spec(self, name: str) -> DatasetSpec:
        """A synthesized :class:`DatasetSpec` for harness interop.

        The paper fields describe the *local* file (extent/bytes from
        what is on disk, entropy unknown); the generator recipe is the
        sentinel ``"external"`` so nothing ever tries to synthesize it.
        """
        entry = self.entry(name)
        path = self.path(name)
        nbytes = path.stat().st_size if path.is_file() else 0
        elements = nbytes // entry.numpy_dtype.itemsize if nbytes else 0
        return DatasetSpec(
            name=entry.name,
            domain=entry.domain,
            dtype=entry.dtype,
            paper_extent=(int(elements),),
            paper_bytes=int(nbytes),
            paper_entropy=float("nan"),
            generator="external",
            params={"url": entry.url},
        )

    def status(self) -> dict:
        """Per-dataset availability summary for CLI/report surfaces."""
        return {
            name: ("available" if self.available(name) else "missing")
            for name in self.names()
        }

