"""The 33-dataset benchmark corpus (Table 3) and its synthetic generators."""

from repro.data.catalog import (
    CATALOG,
    DatasetSpec,
    dataset_names,
    domains,
    get_spec,
)
from repro.data.entropy import byte_entropy, value_entropy
from repro.data.generators import available_generators, generate
from repro.data.loader import DEFAULT_TARGET_ELEMENTS, load, load_spec

__all__ = [
    "CATALOG",
    "DEFAULT_TARGET_ELEMENTS",
    "DatasetSpec",
    "available_generators",
    "byte_entropy",
    "dataset_names",
    "domains",
    "generate",
    "get_spec",
    "load",
    "load_spec",
    "value_entropy",
]
