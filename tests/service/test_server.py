"""End-to-end server behavior: identity, batching, errors, drain.

The acceptance bar for the service: a served round trip is
byte-identical to the local API for every registered codec (and the
``auto`` v2 streams), batched execution answers with exactly the bytes
serial execution would, and no malformed input hangs or crashes the
server — it answers with typed protocol errors.
"""

import socket

import numpy as np
import pytest

from repro.api import FORMAT_V2, compress_array, decompress_array
from repro.api.session import DecompressSession
from repro.compressors import compressor_names, get_compressor
from repro.errors import CorruptStreamError, SelectionError
from repro.select import resolve_policy
from repro.service import ServiceClient, serve_background
from repro.service.protocol import (
    COMPRESS,
    ERR_PROTOCOL,
    ERROR,
    PING,
    FrameParser,
    encode_compress_request,
    encode_frame,
    response_type,
)

ALL_METHODS = compressor_names()


@pytest.fixture(scope="module")
def server():
    handle = serve_background(batch_window=0.002)
    yield handle
    handle.stop()


@pytest.fixture(scope="module")
def client(server):
    with ServiceClient(server.host, server.port) as client:
        yield client


def _sample(dtype=np.float64, n=257):
    rng = np.random.default_rng(7)
    arr = np.cumsum(rng.normal(0, 1, n)).astype(dtype)
    arr[3] = np.nan
    arr[5] = np.inf
    return arr


# ----------------------------------------------------------------------
# Byte identity with the local API
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_METHODS)
def test_served_roundtrip_byte_identical(client, name):
    comp = get_compressor(name)
    dtype = np.float64 if "D" in comp.info.precisions else np.float32
    arr = _sample(dtype)
    served = client.compress_array(arr, name, chunk_elements=64)
    local = compress_array(arr, name, chunk_elements=64)
    assert served == local, f"{name}: served stream differs from local"
    back = client.decompress_array(served)
    uint = np.uint64 if dtype == np.float64 else np.uint32
    assert np.array_equal(back.view(uint), arr.view(uint))


def test_served_raw_codec_identity(client):
    arr = _sample()
    served = client.compress_array(arr, "none", chunk_elements=100)
    assert served == compress_array(arr, "none", chunk_elements=100)


def test_served_auto_codec_writes_identical_v2_stream(client):
    arr = np.concatenate(
        [
            np.round(np.linspace(10, 20, 1024), 1),  # quantized regime
            np.cumsum(np.random.default_rng(0).normal(0, 1e-4, 1024)),
        ]
    )
    served = client.compress_array(arr, "auto", chunk_elements=256)
    local = compress_array(
        arr, resolve_policy("heuristic"), chunk_elements=256
    )
    assert served == local
    with DecompressSession(served) as session:
        assert session.format_version == FORMAT_V2
        assert len(set(session.frame_codec_names())) >= 1
    assert np.array_equal(
        client.decompress_array(served), decompress_array(served)
    )


def test_served_decompress_of_multidim_restores_shape(client):
    arr = np.linspace(0, 1, 600).reshape(3, 10, 20)
    blob = compress_array(arr, "bitshuffle-zstd", chunk_elements=128)
    back = client.decompress_array(blob)
    assert back.shape == (3, 10, 20)
    assert np.array_equal(back, arr)


# ----------------------------------------------------------------------
# Batching: coalesced execution answers with serial bytes
# ----------------------------------------------------------------------
def _pipeline_compress(host, port, arrays, codec="gorilla", chunk=64):
    """Send all requests before reading any response (forces batching)."""
    blob = b"".join(
        encode_frame(
            COMPRESS,
            request_id,
            encode_compress_request(array, codec, chunk),
        )
        for request_id, array in enumerate(arrays, start=1)
    )
    with socket.create_connection((host, port), timeout=30) as sock:
        sock.sendall(blob)
        parser = FrameParser()
        frames = []
        while len(frames) < len(arrays):
            data = sock.recv(1 << 16)
            assert data, "server closed before answering every request"
            frames.extend(parser.feed(data))
    return frames


def test_batched_responses_byte_identical_to_serial(server, client):
    arrays = [
        np.cumsum(np.random.default_rng(seed).normal(0, 1, 300))
        for seed in range(8)
    ]
    frames = _pipeline_compress(server.host, server.port, arrays)
    # In request order, each answering its own id with serial bytes.
    assert [f.request_id for f in frames] == list(range(1, 9))
    for frame, array in zip(frames, arrays):
        assert frame.frame_type == response_type(COMPRESS)
        assert frame.payload == client.compress_array(
            array, "gorilla", chunk_elements=64
        )
        assert frame.payload == compress_array(array, "gorilla",
                                               chunk_elements=64)


def test_batching_actually_coalesces(server):
    before = server.metrics.batches
    arrays = [np.linspace(0, 1, 256) for _ in range(6)]
    _pipeline_compress(server.host, server.port, arrays)
    made = server.metrics.batches - before
    assert 1 <= made < 6, f"6 pipelined requests ran as {made} batches"


def test_parallel_jobs_batch_byte_identical_to_serial():
    # jobs=2 routes batches through the persistent process pool; the
    # responses must still be the serial bytes, across several batches
    # (the pool is reused, not rebuilt per batch).
    arrays = [np.cumsum(np.ones(400) * s) for s in (0.25, 0.5, 1.0, 2.0)]
    with serve_background(jobs=2, batch_window=0.002) as parallel:
        for _ in range(2):  # second round reuses the pool
            frames = _pipeline_compress(parallel.host, parallel.port, arrays)
            for frame, array in zip(frames, arrays):
                assert frame.payload == compress_array(
                    array, "gorilla", chunk_elements=64
                )
        parallel.stop()


def test_backpressure_slicing_preserves_order_and_bytes():
    # A server whose in-flight bound forces one-request slices must
    # still answer everything, in order, with identical bytes.
    arrays = [np.linspace(s, s + 1, 500) for s in range(5)]
    with serve_background(max_inflight_bytes=1024, batch_window=0.002) as tiny:
        frames = _pipeline_compress(tiny.host, tiny.port, arrays)
        assert [f.request_id for f in frames] == [1, 2, 3, 4, 5]
        for frame, array in zip(frames, arrays):
            assert frame.payload == compress_array(
                array, "gorilla", chunk_elements=64
            )
        tiny.stop()


# ----------------------------------------------------------------------
# Concurrency
# ----------------------------------------------------------------------
def test_concurrent_connections_all_roundtrip(server):
    import threading

    arr = np.cumsum(np.ones(1000) * 0.25)
    local = compress_array(arr, "chimp", chunk_elements=128)
    failures = []

    def worker():
        try:
            with ServiceClient(server.host, server.port, pool_size=1) as c:
                for _ in range(3):
                    blob = c.compress_array(arr, "chimp", chunk_elements=128)
                    assert blob == local
                    assert np.array_equal(c.decompress_array(blob), arr)
        except BaseException as exc:  # noqa: BLE001
            failures.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(5)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not failures, failures


# ----------------------------------------------------------------------
# Typed errors: corrupt payloads, unknown codecs, malformed frames
# ----------------------------------------------------------------------
def test_corrupt_fcf_payload_raises_corrupt_stream(client):
    arr = _sample()
    blob = bytearray(compress_array(arr, "gorilla", chunk_elements=64))
    for offset in (len(blob) // 3, len(blob) // 2, len(blob) - 20):
        damaged = bytearray(blob)
        damaged[offset] ^= 0xFF
        try:
            out = client.decompress_array(bytes(damaged))
        except CorruptStreamError:
            continue
        except BaseException as exc:  # noqa: BLE001
            pytest.fail(f"leaked {type(exc).__name__} instead: {exc}")
        assert np.array_equal(
            out.ravel().view(np.uint64), arr.view(np.uint64)
        ), "damaged stream served different data without an error"


def test_truncated_fcf_payload_raises_corrupt_stream(client):
    blob = compress_array(_sample(), "chimp", chunk_elements=64)
    for cut in (0, 1, 7, len(blob) // 2, len(blob) - 1):
        with pytest.raises(CorruptStreamError):
            client.decompress_array(blob[:cut])


def test_unknown_policy_raises_selection_error(client):
    with pytest.raises(SelectionError):
        client.compress_array(_sample(), "auto", policy="nosuch")


def test_malformed_frames_get_typed_error_then_close(server):
    # Several flavors of wire garbage; each must be answered with an
    # ERR_PROTOCOL frame (or an immediate close) within the timeout —
    # never a hang, and the server must survive to serve the next test.
    valid = encode_frame(PING, 1, b"x")
    attacks = [
        b"GARBAGE" * 4,
        b"\x00" * 64,
        valid[:-3] + b"\xff\xff\xff",  # corrupted CRC
        bytes([valid[0] ^ 0xFF]) + valid[1:],  # corrupted magic
    ]
    for attack in attacks:
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            sock.sendall(attack)
            chunks = []
            while True:
                data = sock.recv(1 << 16)  # hangs -> timeout -> test fail
                if not data:
                    break
                chunks.append(data)
        replies = FrameParser().feed(b"".join(chunks))
        if replies:  # typed error, then close
            assert replies[-1].frame_type == ERROR
            assert replies[-1].payload[0] == ERR_PROTOCOL


def test_bit_flipped_wire_frames_never_hang(server):
    # Mirror the tests/api corruption style at the wire layer: flip one
    # byte of a valid frame at a spread of offsets and replay it.
    frame = encode_frame(
        COMPRESS, 2, encode_compress_request(np.linspace(0, 1, 64),
                                             "gorilla", 32)
    )
    for offset in range(0, len(frame), max(1, len(frame) // 9)):
        damaged = bytearray(frame)
        damaged[offset] ^= 0xFF
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            sock.sendall(bytes(damaged))
            sock.shutdown(socket.SHUT_WR)
            while sock.recv(1 << 16):
                pass  # drain whatever the server answers until close


def test_truncated_wire_frame_then_disconnect_is_harmless(server):
    frame = encode_frame(PING, 3, b"payload")
    for cut in range(1, len(frame), 4):
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            sock.sendall(frame[:cut])
        # Abandoning mid-frame must not wedge the server.
    with ServiceClient(server.host, server.port) as probe:
        assert probe.ping() >= 0


def test_unknown_request_type_keeps_connection_alive(server):
    with socket.create_connection((server.host, server.port), timeout=10) as sock:
        sock.sendall(encode_frame(0x6E, 1, b""))  # well-formed, unknown type
        parser = FrameParser()
        frames = []
        while not frames:
            frames = parser.feed(sock.recv(1 << 16))
        assert frames[0].frame_type == ERROR
        assert frames[0].payload[0] == ERR_PROTOCOL
        # Same connection still answers a real request.
        sock.sendall(encode_frame(PING, 2, b"still here"))
        frames = []
        while not frames:
            frames = parser.feed(sock.recv(1 << 16))
        assert frames[0].frame_type == response_type(PING)
        assert frames[0].payload == b"still here"


def test_oversized_frame_rejected_without_allocation(server):
    with socket.create_connection((server.host, server.port), timeout=10) as sock:
        head = b"FCS1" + bytes([PING]) + b"\x01"
        # Declare ~2^40 payload bytes; never send them.
        sock.sendall(head + b"\x80\x80\x80\x80\x80\x80\x80\x80\x3e")
        chunks = []
        while True:
            data = sock.recv(1 << 16)
            if not data:
                break
            chunks.append(data)
    replies = FrameParser().feed(b"".join(chunks))
    assert replies and replies[-1].frame_type == ERROR


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
def test_graceful_drain_finishes_then_refuses():
    handle = serve_background()
    with ServiceClient(handle.host, handle.port) as probe:
        assert probe.ping() >= 0
    host, port = handle.host, handle.port
    handle.stop()
    with pytest.raises(OSError):
        socket.create_connection((host, port), timeout=2).close()
    handle.stop()  # idempotent


def test_stats_request_reflects_served_traffic():
    with serve_background() as handle:
        with ServiceClient(handle.host, handle.port) as client:
            client.compress_array(np.linspace(0, 1, 128), "gorilla")
            client.ping()
            snapshot = client.stats()
        assert snapshot["ops"]["compress"]["requests"] == 1
        assert snapshot["ops"]["ping"]["requests"] == 1
        assert snapshot["codecs"]["gorilla"]["bytes_in"] == 128 * 8
        assert snapshot["connections"]["opened"] >= 1
        handle.stop()


def test_async_client_roundtrip():
    import asyncio

    from repro.service import AsyncServiceClient

    arr = np.cumsum(np.ones(500) * 0.5)
    local = compress_array(arr, "gorilla", chunk_elements=100)

    async def scenario(host, port):
        client = await AsyncServiceClient.connect(host, port)
        async with client:
            assert await client.ping() >= 0
            blob = await client.compress_array(
                arr, "gorilla", chunk_elements=100
            )
            assert blob == local
            back = await client.decompress_array(blob)
            assert np.array_equal(back, arr)
            explain = await client.select_explain(arr, chunk_elements=250)
            assert len(explain["chunks"]) == 2
            stats = await client.stats()
            assert stats["ops"]["compress"]["requests"] >= 1

    with serve_background() as handle:
        asyncio.run(scenario(handle.host, handle.port))
        handle.stop()
