"""HTTP observability gateway: Prometheus exposition, health, tenants.

The exposition-format validator below is deliberately strict about the
parts scrapers are strict about: every sample line belongs to a family
announced by ``# HELP``/``# TYPE``, counter family names end in
``_total``, label values are quoted and escaped, and values parse as
floats.  The live-scrape tests then assert per-tenant counters and the
online arm gauges actually show up for real traffic.
"""

import json
import re
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.service import ServiceClient, serve_background
from repro.service.gateway import ObservabilityGateway, render_prometheus
from repro.service.tenants import TenantConfig, TenantRegistry

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[^ ]+)$"
)
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*"$')


def validate_exposition(text: str) -> dict:
    """Parse a Prometheus text-format page; return {family: kind}."""
    families: dict[str, str] = {}
    announced: set[str] = set()
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            announced.add(line.split(" ", 3)[2])
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert name in announced, f"TYPE before HELP for {name}"
            assert kind in {"counter", "gauge", "summary"}, kind
            if kind == "counter":
                assert name.endswith("_total"), (
                    f"counter {name} must end in _total"
                )
            families[name] = kind
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = SAMPLE_RE.match(line)
        assert match, f"malformed sample line: {line!r}"
        assert match.group("name") in families, (
            f"sample {match.group('name')} has no TYPE header"
        )
        if match.group("labels"):
            inner = match.group("labels")[1:-1]
            for pair in filter(None, inner.split(",")):
                assert LABEL_RE.match(pair), f"bad label pair: {pair!r}"
        float(match.group("value"))  # raises if not a number
    assert families, "no metric families found"
    return families


def _registry():
    registry = TenantRegistry()
    registry.add(TenantConfig("acme", token="gw-acme", priority=5))
    registry.add(TenantConfig("beta", token="gw-beta"))
    return registry


@pytest.fixture(scope="module")
def stack():
    handle = serve_background(tenants=_registry(), online_seed=42)
    gateway = ObservabilityGateway(handle.server)
    gateway.start()
    array = np.linspace(0.0, 1.0, 2048).astype(np.float64)
    with ServiceClient(handle.host, handle.port, token="gw-acme") as acme:
        for _ in range(3):
            blob = acme.compress_array(array, "auto", policy="online")
            acme.decompress_array(blob)
    with ServiceClient(handle.host, handle.port, token="gw-beta") as beta:
        beta.compress_array(array, "gorilla")
    yield gateway
    gateway.stop()
    handle.stop()


def _get(gateway, path):
    with urllib.request.urlopen(gateway.url(path), timeout=5) as resp:
        return resp.status, resp.read().decode("utf-8")


class TestRenderPrometheus:
    def test_render_is_valid_exposition(self, stack):
        document = stack.server.stats_document()
        families = validate_exposition(render_prometheus(document))
        assert families["fcbench_uptime_seconds"] == "gauge"
        assert families["fcbench_requests_total"] == "counter"
        assert families["fcbench_tenant_requests_total"] == "counter"

    def test_node_label_threaded_through(self, stack):
        document = stack.server.stats_document()
        text = render_prometheus(document, node_id="node-7")
        assert 'node="node-7"' in text
        validate_exposition(text)

    def test_label_values_escaped(self, stack):
        document = stack.server.stats_document()
        text = render_prometheus(document, node_id='we"ird\\nd\n')
        validate_exposition(text)
        assert '\\"' in text and "\\\\" in text and "\\n" in text


class TestEndpoints:
    def test_metrics_scrape(self, stack):
        status, body = _get(stack, "/metrics")
        assert status == 200
        families = validate_exposition(body)
        # Per-tenant counters attribute the traffic the fixture drove.
        acme = re.search(
            r'fcbench_tenant_requests_total\{[^}]*tenant="acme"\} (\d+)',
            body,
        )
        beta = re.search(
            r'fcbench_tenant_requests_total\{[^}]*tenant="beta"\} (\d+)',
            body,
        )
        assert acme and int(acme.group(1)) == 6  # 3 compress + 3 decompress
        assert beta and int(beta.group(1)) == 1
        # The online bandit's arm statistics are exported too.
        assert families["fcbench_online_arm_pulls_total"] == "counter"
        assert 'tenant="acme"' in body

    def test_healthz_ok(self, stack):
        status, body = _get(stack, "/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

    def test_tenants_json(self, stack):
        status, body = _get(stack, "/tenants")
        assert status == 200
        payload = json.loads(body)
        assert set(payload["tenancy"]["tenants"]) == {"acme", "beta"}
        assert "acme" in payload["tenants"]
        assert "gw-acme" not in body  # tokens never leave the server

    def test_unknown_path_404(self, stack):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(stack, "/nope")
        assert excinfo.value.code == 404

    def test_port_resolves_and_restart_is_idempotent(self, stack):
        assert stack.port > 0
        assert stack.start() is stack  # second start is a no-op


class TestErrorPaths:
    def test_non_get_is_405_with_allow_header(self, stack):
        for method in ("POST", "PUT", "DELETE"):
            request = urllib.request.Request(
                stack.url("/metrics"),
                data=b"" if method != "DELETE" else None,
                method=method,
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=5)
            assert excinfo.value.code == 405, method
            assert excinfo.value.headers["Allow"] == "GET"

    def test_trace_on_an_untraced_server_is_a_clean_404(self, stack):
        # The fixture's server runs without --trace: the route exists
        # but answers 404 JSON, not a 500 or an exposition page.
        for path in ("/trace", "/trace/chrome", "/trace/" + "ab" * 16):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(stack, path)
            assert excinfo.value.code == 404, path
            body = json.loads(excinfo.value.read().decode("utf-8"))
            assert body["error"] == "tracing disabled"

    def test_build_info_and_scrape_duration_exported(self, stack):
        _, body = _get(stack, "/metrics")
        families = validate_exposition(body)
        assert families["fcbench_build_info"] == "gauge"
        assert (
            families["fcbench_gateway_scrape_duration_seconds"] == "gauge"
        )
        info = re.search(r"fcbench_build_info\{([^}]*)\} 1", body)
        assert info, "build info sample missing"
        assert 'version="' in info.group(1)
        assert 'python="' in info.group(1)

    def test_concurrent_scrapes_race_metric_writes_cleanly(self, stack):
        """Scrapes racing live traffic must each see a valid page."""
        import threading

        array = np.linspace(0.0, 1.0, 1024).astype(np.float64)
        errors: list[str] = []
        stop = threading.Event()

        def _traffic():
            with ServiceClient(
                stack.server.host, stack.server.port, token="gw-acme"
            ) as client:
                while not stop.is_set():
                    client.compress_array(array, "gorilla")

        def _scrape():
            try:
                for _ in range(10):
                    status, body = _get(stack, "/metrics")
                    assert status == 200
                    validate_exposition(body)
            except Exception as exc:  # noqa: BLE001 - the point
                errors.append(f"{type(exc).__name__}: {exc}")

        driver = threading.Thread(target=_traffic, daemon=True)
        scrapers = [
            threading.Thread(target=_scrape, daemon=True) for _ in range(4)
        ]
        driver.start()
        for thread in scrapers:
            thread.start()
        for thread in scrapers:
            thread.join(timeout=60)
        stop.set()
        driver.join(timeout=60)
        assert errors == []


class TestTraceRoutes:
    @pytest.fixture(scope="class")
    def traced_stack(self):
        handle = serve_background(trace=True, online_seed=7)
        gateway = ObservabilityGateway(handle.server)
        gateway.start()
        array = np.linspace(0.0, 1.0, 2048).astype(np.float64)
        with ServiceClient(handle.host, handle.port, trace=True) as client:
            blob = client.compress_array(array, "gorilla")
            client.decompress_array(blob)
            trace_ids = sorted(
                {s["trace_id"] for s in client.recorder.snapshot()}
            )
        yield gateway, trace_ids
        gateway.stop()
        handle.stop()

    def test_trace_lists_recent_spans_and_ids(self, traced_stack):
        gateway, trace_ids = traced_stack
        status, body = _get(gateway, "/trace")
        assert status == 200
        payload = json.loads(body)
        assert payload["stats"]["enabled"] is True
        assert set(trace_ids) <= set(payload["trace_ids"])
        names = {span["name"] for span in payload["spans"]}
        assert {"server.request", "server.execute"} <= names

    def test_trace_by_id_returns_one_nested_tree(self, traced_stack):
        gateway, trace_ids = traced_stack
        status, body = _get(gateway, f"/trace/{trace_ids[0]}")
        assert status == 200
        payload = json.loads(body)
        assert all(
            span["trace_id"] == trace_ids[0] for span in payload["spans"]
        )
        [root] = payload["tree"]
        assert root["name"] == "server.request"
        assert {c["name"] for c in root["children"]} >= {
            "server.parse",
            "server.execute",
        }

    def test_unknown_trace_id_is_404(self, traced_stack):
        gateway, _ = traced_stack
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(gateway, "/trace/" + "00" * 16)
        assert excinfo.value.code == 404

    def test_chrome_export_loads_in_about_tracing(self, traced_stack):
        gateway, _ = traced_stack
        status, body = _get(gateway, "/trace/chrome")
        assert status == 200
        events = json.loads(body)["traceEvents"]
        assert events and all(event["ph"] == "X" for event in events)
