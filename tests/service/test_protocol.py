"""Wire-protocol units and corruption fuzz (mirrors tests/api style).

Whatever bytes the parser is fed — truncated frames, single-byte
flips, hostile length prefixes — it must either produce valid frames
or raise :class:`~repro.errors.ProtocolError`; any other exception is
an internals leak, and an unbounded allocation or loop is a DoS.
"""

import numpy as np
import pytest

from repro.errors import (
    CorruptStreamError,
    ProtocolError,
    SelectionError,
    ServiceError,
    UnsupportedDtypeError,
)
from repro.service import protocol
from repro.service.protocol import (
    COMPRESS,
    ERR_CORRUPT_STREAM,
    ERR_SELECTION,
    ERROR,
    MAGIC,
    PING,
    Frame,
    FrameParser,
    encode_frame,
    response_type,
)


def _roundtrip(frame_type, request_id, payload):
    frames = FrameParser().feed(encode_frame(frame_type, request_id, payload))
    assert len(frames) == 1
    return frames[0]


# ----------------------------------------------------------------------
# Framing units
# ----------------------------------------------------------------------
def test_frame_roundtrip():
    frame = _roundtrip(PING, 7, b"hello")
    assert frame.frame_type == PING
    assert frame.request_id == 7
    assert frame.payload == b"hello"


def test_empty_payload_roundtrip():
    frame = _roundtrip(PING, 0, b"")
    assert frame.payload == b""


def test_large_request_id_roundtrip():
    frame = _roundtrip(PING, 2**40, b"x")
    assert frame.request_id == 2**40


def test_multiple_frames_in_one_feed():
    blob = encode_frame(PING, 1, b"a") + encode_frame(PING, 2, b"bb")
    frames = FrameParser().feed(blob)
    assert [f.request_id for f in frames] == [1, 2]
    assert [f.payload for f in frames] == [b"a", b"bb"]


def test_incremental_single_byte_feeding():
    blob = encode_frame(COMPRESS, 3, b"payload bytes")
    parser = FrameParser()
    collected = []
    for index in range(len(blob)):
        collected += parser.feed(blob[index : index + 1])
    assert len(collected) == 1
    assert collected[0].payload == b"payload bytes"
    assert parser.buffered_bytes == 0


def test_payload_over_limit_rejected_before_allocation():
    parser = FrameParser(max_payload=64)
    huge = encode_frame(PING, 1, bytes(65))
    with pytest.raises(ProtocolError, match="limit"):
        parser.feed(huge)


def test_bad_magic_rejected():
    with pytest.raises(ProtocolError, match="magic"):
        FrameParser().feed(b"XXXX" + bytes(20))


def test_crc_mismatch_rejected():
    blob = bytearray(encode_frame(PING, 1, b"abcdef"))
    blob[-6] ^= 0x10  # flip a payload byte, leave the CRC alone
    with pytest.raises(ProtocolError, match="checksum"):
        FrameParser().feed(bytes(blob))


# ----------------------------------------------------------------------
# Corruption fuzz: truncation and bit flips at every offset
# ----------------------------------------------------------------------
def test_truncation_never_raises_and_never_yields_a_frame():
    blob = encode_frame(COMPRESS, 9, b"0123456789abcdef")
    for cut in range(len(blob)):
        parser = FrameParser()
        frames = parser.feed(blob[:cut])
        assert frames == []  # incomplete, never partial output


def test_single_byte_flips_are_rejected_or_reframed():
    blob = encode_frame(COMPRESS, 5, b"sensitive payload")
    type_offset = len(MAGIC)
    for offset in range(len(blob)):
        damaged = bytearray(blob)
        damaged[offset] ^= 0xFF
        parser = FrameParser(max_payload=1 << 16)
        try:
            frames = parser.feed(bytes(damaged))
        except ProtocolError:
            continue  # the expected rejection
        except BaseException as exc:  # noqa: BLE001 - the point of the test
            pytest.fail(
                f"flip at {offset} leaked {type(exc).__name__}: {exc}"
            )
        # The only flip the CRC cannot see is the frame-type byte (it
        # is outside the payload checksum): the frame still parses,
        # and the server answers it with a typed unknown-type error.
        for frame in frames:
            assert offset == type_offset
            assert frame.payload == b"sensitive payload"


def test_hostile_length_prefix_never_allocates():
    # 2^62 declared payload bytes: must die on the declared length.
    head = MAGIC + bytes([PING]) + b"\x01"
    hostile = head + b"\x80\x80\x80\x80\x80\x80\x80\x80\x3e"
    with pytest.raises(ProtocolError):
        FrameParser().feed(hostile)


def test_unterminated_varint_rejected():
    head = MAGIC + bytes([PING]) + b"\x80" * 11
    with pytest.raises(ProtocolError, match="varint"):
        FrameParser().feed(head)


# ----------------------------------------------------------------------
# Payload codecs
# ----------------------------------------------------------------------
def test_array_codec_roundtrip_shapes():
    for array in (
        np.linspace(0, 1, 12, dtype=np.float32).reshape(3, 4),
        np.arange(6, dtype=np.float64).reshape(2, 3),
        np.empty(0, dtype=np.float64),
        np.array(3.5),  # rank 0
    ):
        out = protocol.decode_array(protocol.encode_array(array))
        assert out.dtype == array.dtype
        assert out.shape == array.shape
        assert np.array_equal(out, array, equal_nan=True)


def test_array_codec_rejects_non_float():
    with pytest.raises(UnsupportedDtypeError):
        protocol.encode_array(np.arange(4))


def test_array_codec_rejects_size_mismatch():
    payload = bytearray(protocol.encode_array(np.arange(4.0)))
    with pytest.raises(ProtocolError, match="bytes"):
        protocol.decode_array(bytes(payload[:-1]))


def test_array_codec_fuzz_flips():
    payload = protocol.encode_array(np.linspace(0, 1, 32))
    for offset in range(min(6, len(payload))):  # header region
        damaged = bytearray(payload)
        damaged[offset] ^= 0xFF
        try:
            protocol.decode_array(bytes(damaged))
        except ProtocolError:
            pass
        except BaseException as exc:  # noqa: BLE001
            pytest.fail(f"flip at {offset} leaked {type(exc).__name__}")


def test_compress_request_roundtrip():
    array = np.linspace(0, 1, 100)
    payload = protocol.encode_compress_request(array, "gorilla", 64, "measured")
    codec, policy, chunk_elements, out = protocol.decode_compress_request(
        payload
    )
    assert (codec, policy, chunk_elements) == ("gorilla", "measured", 64)
    assert np.array_equal(out, array)


def test_compress_request_fuzz_truncation():
    payload = protocol.encode_compress_request(
        np.linspace(0, 1, 16), "gorilla", 8
    )
    for cut in range(len(payload)):
        try:
            protocol.decode_compress_request(payload[:cut])
        except (ProtocolError, UnsupportedDtypeError):
            pass
        except BaseException as exc:  # noqa: BLE001
            pytest.fail(f"cut at {cut} leaked {type(exc).__name__}")


def test_explain_request_roundtrip():
    array = np.linspace(0, 1, 30)
    policy, chunk_elements, out = protocol.decode_explain_request(
        protocol.encode_explain_request(array, "heuristic", 10)
    )
    assert (policy, chunk_elements) == ("heuristic", 10)
    assert np.array_equal(out, array)


def test_json_payload_rejects_garbage():
    with pytest.raises(ProtocolError):
        protocol.decode_json(b"\xff\xfe not json")
    with pytest.raises(ProtocolError):
        protocol.decode_json(b"[1, 2]")  # not an object


# ----------------------------------------------------------------------
# Cluster topology and control payloads
# ----------------------------------------------------------------------
def _topology_doc():
    return {
        "version": 1,
        "replication": 2,
        "vnodes": 128,
        "nodes": [
            {
                "id": f"node-{i}",
                "host": "127.0.0.1",
                "port": 7000 + i,
                "state": "up",
            }
            for i in range(3)
        ],
    }


def test_topology_roundtrip():
    doc = _topology_doc()
    assert protocol.decode_topology(protocol.encode_topology(doc)) == doc


@pytest.mark.parametrize(
    "mutate",
    [
        lambda d: d.pop("version"),
        lambda d: d.update(version=-1),
        lambda d: d.update(version=True),
        lambda d: d.update(version="1"),
        lambda d: d.update(replication=0),
        lambda d: d.update(vnodes=0),
        lambda d: d.update(vnodes=4097),
        lambda d: d.update(vnodes=True),
        lambda d: d.update(nodes=[]),
        lambda d: d.update(nodes="node-0"),
        lambda d: d["nodes"].append("not-an-object"),
        lambda d: d["nodes"].append(dict(d["nodes"][0])),  # duplicate id
        lambda d: d["nodes"][0].update(id=""),
        lambda d: d["nodes"][0].update(id="x" * 65),
        lambda d: d["nodes"][0].update(host=""),
        lambda d: d["nodes"][0].pop("host"),
        lambda d: d["nodes"][0].update(port=0),
        lambda d: d["nodes"][0].update(port=65536),
        lambda d: d["nodes"][0].update(port=True),
        lambda d: d["nodes"][0].update(port="7000"),
        lambda d: d["nodes"][0].update(state="zombie"),
        lambda d: d["nodes"][0].pop("state"),
    ],
)
def test_topology_defects_rejected_on_encode_and_decode(mutate):
    import json

    doc = _topology_doc()
    mutate(doc)
    with pytest.raises(ProtocolError, match="topology"):
        protocol.encode_topology(doc)
    with pytest.raises(ProtocolError, match="topology"):
        protocol.decode_topology(json.dumps(doc).encode())


def test_topology_rejects_non_object():
    with pytest.raises(ProtocolError):
        protocol.decode_topology(b"[1, 2, 3]")
    with pytest.raises(ProtocolError):
        protocol.decode_topology(b"\xff not json")


def test_topology_oversized_node_list_rejected():
    doc = _topology_doc()
    doc["nodes"] = [
        {"id": f"node-{i}", "host": "h", "port": 1 + (i % 65535), "state": "up"}
        for i in range(1025)
    ]
    with pytest.raises(ProtocolError, match="nodes"):
        protocol.encode_topology(doc)


def test_topology_payload_fuzz_never_leaks():
    payload = protocol.encode_topology(_topology_doc())
    for cut in range(len(payload)):
        try:
            protocol.decode_topology(payload[:cut])
        except ProtocolError:
            pass
        except BaseException as exc:  # noqa: BLE001
            pytest.fail(f"cut at {cut} leaked {type(exc).__name__}: {exc}")
    for offset in range(len(payload)):
        damaged = bytearray(payload)
        damaged[offset] ^= 0xFF
        try:
            doc = protocol.decode_topology(bytes(damaged))
        except ProtocolError:
            continue
        except BaseException as exc:  # noqa: BLE001
            pytest.fail(
                f"flip at {offset} leaked {type(exc).__name__}: {exc}"
            )
        # A flip that still parses (e.g. inside a hostname) must still
        # be a structurally valid document.
        protocol.validate_topology(doc)


def test_topology_frame_truncation_and_flips():
    """CLUSTER_TOPOLOGY frames obey the same fuzz bar as every frame:
    damaged bytes parse to a valid frame or raise ProtocolError."""
    blob = encode_frame(
        protocol.CLUSTER_TOPOLOGY, 3, protocol.encode_topology(_topology_doc())
    )
    for cut in range(0, len(blob), 7):
        assert FrameParser().feed(blob[:cut]) == []
    for offset in range(0, len(blob), 7):
        damaged = bytearray(blob)
        damaged[offset] ^= 0xFF
        parser = FrameParser()
        try:
            frames = parser.feed(bytes(damaged))
        except ProtocolError:
            continue
        except BaseException as exc:  # noqa: BLE001
            pytest.fail(f"flip at {offset} leaked {type(exc).__name__}")
        for frame in frames:  # only the un-checksummed type byte flip
            assert offset == len(MAGIC)
        assert parser.buffered_bytes <= len(blob)


def test_control_roundtrip():
    for action in protocol.CONTROL_ACTIONS:
        assert protocol.decode_control(protocol.encode_control(action)) == (
            action,
            None,
        )
    assert protocol.decode_control(
        protocol.encode_control("drain", "node-1")
    ) == ("drain", "node-1")


def test_control_rejects_bad_input():
    with pytest.raises(ValueError, match="unknown control action"):
        protocol.encode_control("explode")
    with pytest.raises(ProtocolError, match="unknown control action"):
        protocol.decode_control(protocol.encode_json({"action": "explode"}))
    with pytest.raises(ProtocolError):
        protocol.decode_control(protocol.encode_json({}))
    with pytest.raises(ProtocolError):
        protocol.decode_control(
            protocol.encode_json({"action": "drain", "node": 7})
        )
    with pytest.raises(ProtocolError):
        protocol.decode_control(
            protocol.encode_json({"action": "drain", "node": "x" * 65})
        )
    with pytest.raises(ProtocolError):
        protocol.decode_control(b"\x00\x01garbage")


def test_control_payload_fuzz_never_leaks():
    payload = protocol.encode_control("drain", "node-1")
    for cut in range(len(payload)):
        try:
            protocol.decode_control(payload[:cut])
        except ProtocolError:
            pass
        except BaseException as exc:  # noqa: BLE001
            pytest.fail(f"cut at {cut} leaked {type(exc).__name__}")
    for offset in range(len(payload)):
        damaged = bytearray(payload)
        damaged[offset] ^= 0xFF
        try:
            action, node = protocol.decode_control(bytes(damaged))
        except ProtocolError:
            continue
        except BaseException as exc:  # noqa: BLE001
            pytest.fail(f"flip at {offset} leaked {type(exc).__name__}")
        assert action in protocol.CONTROL_ACTIONS


# ----------------------------------------------------------------------
# Typed error frames
# ----------------------------------------------------------------------
def test_error_code_mapping_is_bidirectional():
    cases = [
        (CorruptStreamError("x"), ERR_CORRUPT_STREAM, CorruptStreamError),
        (SelectionError("x"), ERR_SELECTION, SelectionError),
        (UnsupportedDtypeError("x"), protocol.ERR_UNSUPPORTED_DTYPE,
         UnsupportedDtypeError),
        (KeyError("nosuch"), protocol.ERR_UNKNOWN_CODEC, ServiceError),
        (RuntimeError("boom"), protocol.ERR_INTERNAL, ServiceError),
    ]
    for exc, expected_code, expected_type in cases:
        code = protocol.error_code_for(exc)
        assert code == expected_code
        frame = Frame(ERROR, 1, protocol.encode_error(code, str(exc)))
        with pytest.raises(expected_type):
            protocol.raise_for_error(frame)


def test_unknown_error_code_degrades_to_service_error():
    frame = Frame(ERROR, 1, protocol.encode_error(0xEE, "from the future"))
    with pytest.raises(ServiceError, match="future"):
        protocol.raise_for_error(frame)


def test_empty_error_payload_is_a_protocol_error():
    with pytest.raises(ProtocolError):
        protocol.raise_for_error(Frame(ERROR, 1, b""))


def test_response_type_sets_high_bit():
    assert response_type(COMPRESS) == COMPRESS | 0x80
