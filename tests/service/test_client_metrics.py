"""Client pooling/retry behavior and the metrics/loadgen instruments."""

import pytest

from repro.errors import ProtocolError
from repro.perf.loadgen import percentile, run_loadgen
from repro.service import ServiceClient, serve_background
from repro.service.metrics import LatencyHistogram, ServiceMetrics


# ----------------------------------------------------------------------
# Client: pooling and transparent retry
# ----------------------------------------------------------------------
def test_pool_reuses_connections():
    with serve_background() as handle:
        with ServiceClient(handle.host, handle.port, pool_size=1) as client:
            for _ in range(5):
                client.ping()
        # One pooled connection served all five requests.
        assert handle.metrics.connections_opened == 1
        handle.stop()


def test_retry_after_server_restart_on_same_port():
    # Kill the server under a client holding a pooled (now dead)
    # connection, restart on the same port, and issue a request: the
    # retry path must discard the stale socket and redial.
    handle = serve_background()
    host, port = handle.host, handle.port
    client = ServiceClient(host, port, pool_size=1, retry=2, deadline=10)
    assert client.ping() >= 0  # parks a live connection in the pool
    handle.stop()
    handle2 = serve_background(port=port)
    try:
        assert client.ping() >= 0  # transparent redial
    finally:
        client.close()
        handle2.stop()


def test_no_retries_surfaces_transport_failure():
    handle = serve_background()
    client = ServiceClient(
        handle.host, handle.port, pool_size=1, retry=0, deadline=5
    )
    assert client.ping() >= 0
    handle.stop()
    with pytest.raises(ProtocolError, match="1 attempt"):
        client.ping()
    client.close()


def test_slow_server_surfaces_timeout_not_protocol_error():
    # A server that accepts but never answers: the client must raise a
    # real TimeoutError (the request may still be executing server-side)
    # instead of retrying the work and reporting a transport failure.
    import socket

    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]
    try:
        client = ServiceClient("127.0.0.1", port, retry=2, deadline=0.3)
        with pytest.raises(TimeoutError):
            client.ping()
        client.close()
    finally:
        listener.close()


def test_closed_client_refuses_requests():
    with serve_background() as handle:
        client = ServiceClient(handle.host, handle.port)
        client.close()
        with pytest.raises(ProtocolError, match="closed"):
            client.ping()
        handle.stop()


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_latency_histogram_quantiles_are_monotonic():
    hist = LatencyHistogram()
    for ms in (1, 2, 3, 5, 8, 13, 21, 400):
        hist.record(ms / 1e3)
    assert hist.total == 8
    p50, p95, p99 = (hist.quantile(q) for q in (0.5, 0.95, 0.99))
    assert 0 < p50 <= p95 <= p99
    assert hist.quantile(0.5) >= 0.003  # the true median is 5-8 ms
    assert hist.mean_seconds == pytest.approx(
        sum((1, 2, 3, 5, 8, 13, 21, 400)) / 8 / 1e3
    )


def test_latency_histogram_empty_and_invalid():
    hist = LatencyHistogram()
    assert hist.quantile(0.99) == 0.0
    assert hist.mean_seconds == 0.0
    with pytest.raises(ValueError):
        hist.record(-1.0)
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_service_metrics_snapshot_shape():
    metrics = ServiceMetrics()
    metrics.connection_opened()
    metrics.record_batch(3)
    metrics.record_request(
        "compress", 0.01, codec="gorilla", bytes_in=800, bytes_out=200
    )
    metrics.record_request("compress", 0.02, ok=False)
    metrics.record_protocol_error()
    snapshot = metrics.snapshot()
    assert snapshot["ops"]["compress"]["requests"] == 2
    assert snapshot["ops"]["compress"]["errors"] == 1
    assert snapshot["ops"]["compress"]["latency"]["count"] == 2
    assert snapshot["codecs"]["gorilla"] == {
        "requests": 1, "bytes_in": 800, "bytes_out": 200,
    }
    assert snapshot["batches"] == {"count": 1, "requests": 3, "mean_size": 3.0}
    assert snapshot["protocol_errors"] == 1
    import json

    json.dumps(snapshot)  # must be JSON-serializable as-is


def test_service_metrics_concurrent_hammer_is_never_torn():
    """N threads mutate while others snapshot: every snapshot must be
    internally consistent (a request's op count, codec bytes, and
    latency sample land atomically), and the final totals exact."""
    import threading

    metrics = ServiceMetrics()
    writers, per_writer = 8, 400
    bytes_in, bytes_out = 64, 16
    stop_reading = threading.Event()
    torn: list[str] = []

    def _write(index: int) -> None:
        for _ in range(per_writer):
            metrics.connection_opened()
            metrics.record_request(
                "compress",
                0.001,
                codec="gorilla",
                bytes_in=bytes_in,
                bytes_out=bytes_out,
            )
            metrics.record_batch(2)
            metrics.connection_closed()

    def _read() -> None:
        while not stop_reading.is_set():
            snapshot = metrics.snapshot()
            ops = snapshot["ops"].get("compress")
            if ops is None:
                continue
            codec = snapshot["codecs"].get("gorilla", {})
            # Atomicity invariants: each record_request lands whole.
            if ops["latency"]["count"] != ops["requests"]:
                torn.append(
                    f"latency {ops['latency']['count']} != "
                    f"requests {ops['requests']}"
                )
            if codec and codec["bytes_in"] != codec["requests"] * bytes_in:
                torn.append(
                    f"bytes_in {codec['bytes_in']} != "
                    f"{codec['requests']} * {bytes_in}"
                )

    threads = [
        threading.Thread(target=_write, args=(index,), daemon=True)
        for index in range(writers)
    ] + [threading.Thread(target=_read, daemon=True) for _ in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads[:writers]:
        thread.join(timeout=60.0)
    stop_reading.set()
    for thread in threads[writers:]:
        thread.join(timeout=10.0)

    assert torn == []
    total = writers * per_writer
    snapshot = metrics.snapshot()
    assert snapshot["ops"]["compress"]["requests"] == total
    assert snapshot["ops"]["compress"]["latency"]["count"] == total
    assert snapshot["codecs"]["gorilla"] == {
        "requests": total,
        "bytes_in": total * bytes_in,
        "bytes_out": total * bytes_out,
    }
    assert snapshot["batches"] == {
        "count": total, "requests": total * 2, "mean_size": 2.0,
    }
    assert snapshot["connections"] == {"opened": total, "active": 0}


# ----------------------------------------------------------------------
# Load generator
# ----------------------------------------------------------------------
def test_percentile_exact_ranks():
    samples = [float(v) for v in range(1, 101)]
    assert percentile(samples, 0.50) == 50.0
    assert percentile(samples, 0.95) == 95.0
    assert percentile(samples, 0.99) == 99.0
    assert percentile(samples, 0.0) == 1.0
    assert percentile(samples, 1.0) == 100.0
    assert percentile([], 0.5) == 0.0


def test_loadgen_sustains_four_connections_with_batching():
    report = run_loadgen(
        connections=4,
        requests=2,
        elements=1024,
        chunk_elements=256,
        codecs=("gorilla", "auto"),
        verify=True,
    )
    assert report["connections"] == 4
    assert report["self_served"] is True
    for cell in report["codecs"]:
        assert cell["errors"] == 0
        assert cell["completed_round_trips"] == 8
        assert cell["byte_identical_with_local"] is True
        assert cell["compress"]["p50_ms"] <= cell["compress"]["p99_ms"]
        assert cell["throughput_mbs"] > 0
    assert report["server"]["protocol_errors"] == 0
    assert report["server"]["connections_opened"] >= 4


def test_loadgen_rejects_bad_arguments():
    with pytest.raises(ValueError):
        run_loadgen(connections=0)
    with pytest.raises(ValueError):
        run_loadgen(host="127.0.0.1")  # port required with explicit host


def test_bench_report_carries_service_section():
    from repro.perf.bench import run_bench

    report = run_bench(
        methods=["gorilla"],
        datasets=["citytemp"],
        elements=512,
        repeats=1,
        guard=False,
        service=False,
    )
    assert "service" not in report
