"""Unit coverage for the resilience primitives.

These are the building blocks every client composes around its
transport; their contracts (deadline monotonicity, deterministic
jitter, retry-fraction bounds, breaker state machine) must hold
independently of any socket.
"""

import pickle
import time

import pytest

from repro.service.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    Deadline,
    RetryBudget,
    RetryPolicy,
)


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------
def test_deadline_counts_down():
    deadline = Deadline.after(5.0)
    assert 4.0 < deadline.remaining() <= 5.0
    assert not deadline.expired
    ms = deadline.remaining_ms()
    assert ms is not None and 4000 < ms <= 5000


def test_deadline_none_is_unbounded():
    deadline = Deadline.after(None)
    assert deadline.remaining() == float("inf")
    assert not deadline.expired
    assert deadline.remaining_ms() is None
    assert deadline.clamp(3.0) == 3.0


def test_deadline_expires():
    deadline = Deadline.after(0.0)
    time.sleep(0.001)
    assert deadline.expired
    assert deadline.remaining() < 0
    assert deadline.remaining_ms() == 0  # floored: never negative on the wire
    assert deadline.clamp(1.0) == 0.0


def test_deadline_clamp_shortens_only():
    deadline = Deadline.after(0.05)
    assert deadline.clamp(10.0) <= 0.05
    assert deadline.clamp(0.01) <= 0.01


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
def test_retry_policy_delays_are_deterministic():
    policy = RetryPolicy(seed=42)
    again = RetryPolicy(seed=42)
    assert [policy.delay(i) for i in range(5)] == [
        again.delay(i) for i in range(5)
    ]


def test_retry_policy_seeds_desynchronize():
    a = RetryPolicy(seed=1)
    b = RetryPolicy(seed=2)
    assert [a.delay(i) for i in range(4)] != [b.delay(i) for i in range(4)]


def test_retry_policy_jitter_only_shortens():
    policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=1.0,
                         jitter=1.0, seed=3)
    for attempt in range(8):
        raw = min(1.0, 0.1 * 2.0**attempt)
        assert 0.0 <= policy.delay(attempt) <= raw


def test_retry_policy_zero_jitter_is_pure_exponential():
    policy = RetryPolicy(base_delay=0.05, multiplier=2.0, max_delay=10.0,
                         jitter=0.0)
    assert policy.delay(0) == pytest.approx(0.05)
    assert policy.delay(1) == pytest.approx(0.10)
    assert policy.delay(2) == pytest.approx(0.20)


def test_retry_policy_is_picklable():
    policy = RetryPolicy(max_attempts=4, base_delay=0.01, seed=9)
    clone = pickle.loads(pickle.dumps(policy))
    assert clone == policy
    assert clone.delay(3) == policy.delay(3)


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError):
        RetryPolicy().delay(-1)


# ----------------------------------------------------------------------
# RetryBudget
# ----------------------------------------------------------------------
def test_retry_budget_bounds_retry_fraction():
    budget = RetryBudget(capacity=2.0, deposit_per_call=0.1)
    assert budget.try_spend()
    assert budget.try_spend()
    # Bucket is now below one token: retries are refused...
    assert not budget.try_spend()
    # ...until enough first attempts have refilled it (12 deposits of
    # 0.1 clear one token even with float accumulation error).
    for _ in range(12):
        budget.record_call()
    assert budget.try_spend()


def test_retry_budget_deposit_caps_at_capacity():
    budget = RetryBudget(capacity=1.5, deposit_per_call=10.0)
    budget.record_call()
    assert budget.tokens == 1.5


def test_retry_budget_validation():
    with pytest.raises(ValueError):
        RetryBudget(capacity=0.5)
    with pytest.raises(ValueError):
        RetryBudget(deposit_per_call=0.0)


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
def test_breaker_trips_after_threshold():
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout=60.0)
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == BREAKER_CLOSED
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == BREAKER_OPEN
    assert not breaker.allow()
    assert breaker.snapshot() == {
        "state": BREAKER_OPEN,
        "consecutive_failures": 3,
        "trips": 1,
    }


def test_breaker_success_resets_failure_run():
    breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == BREAKER_CLOSED


def test_breaker_half_open_admits_single_probe():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=0.01)
    breaker.record_failure()
    assert breaker.state == BREAKER_OPEN
    time.sleep(0.02)
    assert breaker.allow()  # the timer expired: one probe goes through
    assert breaker.state == BREAKER_HALF_OPEN
    assert not breaker.allow()  # second caller waits for the probe
    breaker.record_success()
    assert breaker.state == BREAKER_CLOSED
    assert breaker.allow()


def test_breaker_failed_probe_rearms_the_timer():
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0)
    breaker.record_failure()
    assert breaker.allow(force_probe=True)  # last-resort pass bypasses timer
    assert breaker.state == BREAKER_HALF_OPEN
    breaker.record_failure()
    assert breaker.state == BREAKER_OPEN
    assert not breaker.allow()
    # Re-opening from half-open is not a fresh trip.
    assert breaker.snapshot()["trips"] == 1


def test_breaker_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(reset_timeout=0.0)
