"""End-to-end tracing: the FLAG_TRACE wire field and the span trees.

Wire half: the 24-byte trace context rides the flagged header exactly
like the deadline and tenant fields — unflagged frames stay
byte-identical to protocol v1, hostile inputs get typed errors, never
junk.  Service half: one traced compress renders as one coherent tree
— client attempt, server admission stages, queue wait, and the
worker-process execution span — retrievable over the ``TRACE``
request type.
"""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.obs import NULL_SPAN, TraceContext, build_trace_tree
from repro.service import ServiceClient, serve_background
from repro.service.tenants import TenantConfig, TenantRegistry
from repro.service.protocol import (
    COMPRESS,
    ERROR,
    FLAG_BIT,
    MAGIC,
    PING,
    TRACE,
    FrameParser,
    decode_trace_request,
    encode_frame,
    encode_trace_request,
    response_type,
)

ADMISSION_STAGES = {
    "server.parse",
    "server.deadline",
    "server.auth",
    "server.gate",
    "server.quota",
    "server.queue_wait",
    "server.execute",
}


# ----------------------------------------------------------------------
# FLAG_TRACE on the wire
# ----------------------------------------------------------------------
def _ctx():
    return TraceContext("ab" * 16, "cd" * 8)


def test_untraced_frames_are_byte_identical_to_v1():
    assert encode_frame(PING, 1, b"x", None, None, None) == encode_frame(
        PING, 1, b"x"
    )
    blob = encode_frame(PING, 1, b"x")
    assert blob[len(MAGIC)] & FLAG_BIT == 0


def test_trace_context_round_trips_alone():
    blob = encode_frame(COMPRESS, 9, b"payload", trace_context=_ctx().to_wire())
    assert blob[len(MAGIC)] == COMPRESS | FLAG_BIT
    [frame] = FrameParser().feed(blob)
    assert frame.frame_type == COMPRESS
    assert frame.request_id == 9
    assert frame.payload == b"payload"
    assert frame.deadline_ms is None and frame.tenant_token is None
    assert TraceContext.from_wire(frame.trace_context) == _ctx()


def test_trace_context_round_trips_with_deadline_and_tenant():
    blob = encode_frame(COMPRESS, 2, b"p", 1500, "tok-gold", _ctx().to_wire())
    [frame] = FrameParser().feed(blob)
    assert frame.deadline_ms == 1500
    assert frame.tenant_token == "tok-gold"
    assert TraceContext.from_wire(frame.trace_context) == _ctx()


def test_trace_context_must_be_exactly_24_bytes():
    for width in (0, 23, 25):
        with pytest.raises(ValueError, match="trace context"):
            encode_frame(PING, 1, b"", trace_context=b"\xab" * width)


def test_trace_context_refused_on_response_and_error_frames():
    ctx = _ctx().to_wire()
    with pytest.raises(ValueError):
        encode_frame(response_type(PING), 1, b"", trace_context=ctx)
    with pytest.raises(ValueError):
        encode_frame(ERROR, 1, b"", trace_context=ctx)


def test_truncated_traced_frames_never_leak_a_frame():
    blob = encode_frame(COMPRESS, 3, b"data", 99, None, _ctx().to_wire())
    for cut in range(len(blob)):
        parser = FrameParser()
        try:
            frames = parser.feed(blob[:cut])
        except ProtocolError:
            continue
        assert frames == []


def test_trace_request_payload_round_trips():
    assert decode_trace_request(encode_trace_request()) == (None, None)
    assert decode_trace_request(encode_trace_request(limit=50)) == (50, None)
    assert decode_trace_request(
        encode_trace_request(limit=5, trace_id="ab" * 16)
    ) == (5, "ab" * 16)


def test_trace_request_rejects_hostile_values():
    for limit in (0, -1, 1 << 20):
        with pytest.raises(ValueError):
            encode_trace_request(limit=limit)
    with pytest.raises(ValueError):
        encode_trace_request(trace_id="")
    with pytest.raises(ValueError):
        encode_trace_request(trace_id="x" * 65)
    with pytest.raises(ProtocolError):
        decode_trace_request(b'{"limit": true}')  # bool is not a count
    with pytest.raises(ProtocolError):
        decode_trace_request(b'{"trace_id": 7}')
    with pytest.raises(ProtocolError):
        decode_trace_request(b"\xff not json")


# ----------------------------------------------------------------------
# The traced service, end to end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced():
    registry = TenantRegistry()
    registry.add(TenantConfig("acme", token="tr-acme"))
    handle = serve_background(
        trace=True, tenants=registry, batch_window=0.002
    )
    array = np.cumsum(np.random.default_rng(7).normal(0, 1, 4096))
    with ServiceClient(
        handle.host, handle.port, trace=True, token="tr-acme"
    ) as client:
        blob = client.compress_array(array, "gorilla")
        round_tripped = client.decompress_array(blob)
        # Snapshot before the trace fetch: the TRACE exchange itself
        # opens a client.request span the server does not trace.
        client_spans = client.recorder.snapshot()
        document = client.trace(limit=500)
    yield handle, document, client_spans, array, round_tripped
    handle.stop()


def test_round_trip_still_byte_exact_when_traced(traced):
    _, _, _, array, round_tripped = traced
    assert np.array_equal(round_tripped, array)


def test_server_renders_one_tree_per_request(traced):
    _, document, _, _, _ = traced
    roots = [
        root
        for root in build_trace_tree(document["spans"])
        if root["name"] == "server.request"
    ]
    assert len(roots) >= 2  # one compress, one decompress
    for root in roots:
        children = {child["name"] for child in root["children"]}
        assert ADMISSION_STAGES <= children
        assert root["status"] == "ok"


def test_client_and_server_share_the_trace(traced):
    _, document, client_spans, _, _ = traced
    client_roots = [s for s in client_spans if s["name"] == "client.request"]
    assert len(client_roots) >= 2
    attempts = {s["name"] for s in client_spans}
    assert "client.attempt" in attempts
    server_trace_ids = {s["trace_id"] for s in document["spans"]}
    for root in client_roots:
        # FLAG_TRACE carried the client's context: the server-side
        # spans belong to the *client's* trace, not a fresh one.
        assert root["trace_id"] in server_trace_ids


def test_execute_span_crosses_the_process_pool(traced):
    _, document, _, _, _ = traced
    executes = [
        span for span in document["spans"] if span["name"] == "server.execute"
    ]
    assert executes
    waits = [
        span
        for span in document["spans"]
        if span["name"] == "server.queue_wait"
    ]
    assert waits
    # queue_wait is backdated over the stamp-to-execute gap: it must
    # start no later than its trace's execute span.
    by_trace = {span["trace_id"]: span for span in executes}
    for wait in waits:
        execute = by_trace.get(wait["trace_id"])
        if execute is not None:
            assert wait["start"] <= execute["start"] + 1e-3


def test_stats_document_exposes_ring_counters_when_traced(traced):
    handle, document, _, _, _ = traced
    stats = handle.server.stats_document()["tracing"]
    assert stats["enabled"] is True
    assert stats["recorded"] >= len(document["spans"]) > 0
    assert document["stats"]["enabled"] is True


def test_untraced_server_answers_trace_requests_honestly():
    handle = serve_background(batch_window=0.002)
    try:
        assert "tracing" not in handle.server.stats_document()
        with ServiceClient(handle.host, handle.port) as client:
            client.compress_array(np.arange(64, dtype=np.float64), "gorilla")
            document = client.trace()
        assert document["stats"]["enabled"] is False
        assert document["spans"] == []
    finally:
        handle.stop()


def test_untraced_client_mints_no_spans():
    handle = serve_background(batch_window=0.002)
    try:
        with ServiceClient(handle.host, handle.port) as client:
            client.compress_array(np.arange(64, dtype=np.float64), "gorilla")
            assert client.recorder.span("x") is NULL_SPAN
            assert client.recorder.snapshot() == []
    finally:
        handle.stop()


def test_trace_is_a_first_class_request_type():
    assert TRACE == 0x09
