"""Multi-tenant serving: auth, quotas, priority, and ledger accounting.

The acceptance bars: a zero-quota tenant is always rejected with the
*typed* quota error (never a retryable overload — a lone over-quota
request must not livelock the admission gate), authentication failures
are typed too, quota windows refund what never executed while lifetime
totals keep every admission, and the registry's lifetime ledger always
equals the metrics ledger byte-exactly (the invariant the chaos soak
audits across node failover).
"""

import json
import threading

import numpy as np
import pytest

from repro.errors import (
    AuthenticationError,
    QuotaExceededError,
    ReproError,
)
from repro.service import ServiceClient, serve_background
from repro.service.tenants import (
    TenantConfig,
    TenantRegistry,
    generate_token,
)


def _registry() -> TenantRegistry:
    registry = TenantRegistry()
    registry.add(TenantConfig("acme", token="tok-acme", priority=5))
    registry.add(
        TenantConfig(
            "small",
            token="tok-small",
            max_bytes_per_window=4096,
            window_seconds=3600.0,
        )
    )
    registry.add(
        TenantConfig(
            "suspended",
            token="tok-zero",
            max_requests_per_window=0,
        )
    )
    return registry


@pytest.fixture(scope="module")
def server():
    handle = serve_background(tenants=_registry(), batch_window=0.002)
    yield handle
    handle.stop()


@pytest.fixture()
def array():
    return np.linspace(0.0, 1.0, 2048).astype(np.float64)


# -- registry unit behavior -----------------------------------------------
class TestRegistry:
    def test_duplicate_id_and_token_rejected(self):
        registry = TenantRegistry()
        registry.add(TenantConfig("a", token="t1"))
        with pytest.raises(ValueError):
            registry.add(TenantConfig("a", token="t2"))
        with pytest.raises(ValueError):
            registry.add(TenantConfig("b", token="t1"))

    def test_authenticate_unknown_token_typed(self):
        registry = _registry()
        with pytest.raises(AuthenticationError):
            registry.authenticate("nope")
        with pytest.raises(AuthenticationError):
            registry.authenticate(None)
        assert registry.snapshot()["auth_failures"] == 2

    def test_zero_quota_never_admissible(self):
        registry = _registry()
        decision = registry.check_quota("suspended", 16)
        assert not decision.admitted
        # None, not a number: there is no window reset that will help.
        assert decision.retry_after_ms is None

    def test_window_refund_keeps_lifetime_totals(self):
        registry = TenantRegistry()
        registry.add(
            TenantConfig("t", token="x", max_bytes_per_window=1000)
        )
        assert registry.check_quota("t", 600).admitted
        registry.release("t", 600)  # admitted but never executed
        # The window got its budget back ...
        assert registry.check_quota("t", 600).admitted
        row = registry.snapshot()["tenants"]["t"]
        # ... but the lifetime ledger kept both admissions.
        assert row["total_requests"] == 2
        assert row["total_bytes"] == 1200

    def test_json_round_trip(self, tmp_path):
        registry = _registry()
        path = tmp_path / "tenants.json"
        registry.save(path)
        restored = TenantRegistry.load(path)
        assert restored.tenant_ids() == registry.tenant_ids()
        for tenant_id in registry.tenant_ids():
            assert restored.get(tenant_id) == registry.get(tenant_id)

    def test_snapshot_redacts_tokens(self):
        text = json.dumps(_registry().snapshot())
        assert "tok-acme" not in text and "tok-zero" not in text

    def test_generate_token_unique(self):
        assert generate_token() != generate_token()


# -- served behavior ------------------------------------------------------
class TestServedTenancy:
    def test_round_trip_with_token(self, server, array):
        with ServiceClient(
            server.host, server.port, token="tok-acme"
        ) as client:
            blob = client.compress_array(array, "gorilla")
            restored = client.decompress_array(blob)
        assert np.array_equal(restored, array)

    def test_missing_token_typed_auth_error(self, server, array):
        with ServiceClient(server.host, server.port) as client:
            with pytest.raises(AuthenticationError):
                client.compress_array(array, "gorilla")

    def test_bad_token_typed_auth_error(self, server, array):
        with ServiceClient(
            server.host, server.port, token="wrong"
        ) as client:
            with pytest.raises(AuthenticationError):
                client.compress_array(array, "gorilla")

    def test_light_probes_stay_unauthenticated(self, server):
        # Supervisors and dashboards probe without credentials.
        with ServiceClient(server.host, server.port) as client:
            assert client.ping() >= 0.0
            assert "ops" in client.stats()

    def test_zero_quota_always_rejected_typed(self, server, array):
        with ServiceClient(
            server.host, server.port, token="tok-zero"
        ) as client:
            for _ in range(3):
                with pytest.raises(QuotaExceededError) as excinfo:
                    client.compress_array(array, "gorilla")
                assert excinfo.value.retry_after_ms is None

    def test_over_quota_request_never_livelocks(self, server):
        # One request larger than the whole byte budget: on an *empty*
        # gate it must fail fast with the typed quota error, not spin
        # as a retryable overload until the deadline.
        big = np.zeros(4096, dtype=np.float64)  # 32 KiB > 4 KiB budget
        with ServiceClient(
            server.host, server.port, token="tok-small", deadline=10.0
        ) as client:
            with pytest.raises(QuotaExceededError) as excinfo:
                client.compress_array(big, "gorilla")
        assert excinfo.value.retry_after_ms is None

    def test_quota_error_not_burned_as_retry(self, server, array):
        # Quota errors must not be retried transparently: the error
        # surfaces on the first attempt even with retries enabled.
        with ServiceClient(
            server.host, server.port, token="tok-zero", retry=3
        ) as client:
            with pytest.raises(QuotaExceededError):
                client.compress_array(array, "gorilla")

    def test_two_ledger_invariant(self, array):
        registry = _registry()
        with serve_background(tenants=registry) as handle:
            with ServiceClient(
                handle.host, handle.port, token="tok-acme"
            ) as client:
                for _ in range(5):
                    client.compress_array(array, "gorilla")
                stats = client.stats()
            quota_row = stats["tenancy"]["tenants"]["acme"]
            metric_row = stats["tenants"]["acme"]
            assert quota_row["total_requests"] == 5
            assert (
                quota_row["total_requests"]
                == metric_row["admitted_requests"]
            )
            assert quota_row["total_bytes"] == metric_row["admitted_bytes"]

    def test_per_tenant_metrics_and_rejections_attributed(self, array):
        with serve_background(tenants=_registry()) as handle:
            with ServiceClient(
                handle.host, handle.port, token="tok-acme"
            ) as ok_client:
                ok_client.compress_array(array, "gorilla")
            with ServiceClient(
                handle.host, handle.port, token="tok-zero"
            ) as zero:
                with pytest.raises(ReproError):
                    zero.compress_array(array, "gorilla")
                stats = zero.stats()
        assert stats["tenants"]["acme"]["requests"] == 1
        assert stats["tenants"]["suspended"]["quota_rejected"] == 1
        assert stats["admission"]["quota_rejected"] == 1
        # The deprecated alias keeps its original three keys, no more.
        assert set(stats["resilience"]) == {
            "shed_requests",
            "deadline_rejected",
            "deadline_expired",
        }

    def test_priority_orders_batch_execution(self):
        # Two tenants pipeline into the same coalescing window; the
        # higher-priority tenant's requests must execute first.  Order
        # is observed server-side via the online hub's per-tenant
        # bucket totals... simpler: use a slow batch window and check
        # both still answer correctly (responses match by request id).
        registry = _registry()
        array = np.linspace(0.0, 1.0, 256).astype(np.float64)
        with serve_background(
            tenants=registry, batch_window=0.05, batch_max=8
        ) as handle:
            out = {}

            def work(token, key):
                with ServiceClient(
                    handle.host, handle.port, token=token
                ) as client:
                    out[key] = client.decompress_array(
                        client.compress_array(array, "gorilla")
                    )

            threads = [
                threading.Thread(target=work, args=("tok-acme", "hi")),
                threading.Thread(target=work, args=("tok-small", "lo")),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert np.array_equal(out["hi"], array)
        assert np.array_equal(out["lo"], array)
