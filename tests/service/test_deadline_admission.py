"""Deadline propagation, admission control, and overload retry.

Covers the resilience wire surface end to end: the flagged frame
header (and its byte-identity with protocol v1 when unused), typed
``ERR_DEADLINE`` / ``ERR_OVERLOADED`` answers, server-side shedding
with metrics-visible counters, client retry-on-overload honoring the
server's hint, and the connection-pool leak regression on timeout and
retry paths.
"""

import os
import socket
import threading
import zlib

import numpy as np
import pytest

from repro.errors import (
    DeadlineExceededError,
    ProtocolError,
    ServerOverloadedError,
)
from repro.service import ServiceClient, serve_background
from repro.service.protocol import (
    COMPRESS,
    ERR_DEADLINE,
    ERR_OVERLOADED,
    ERROR,
    FLAG_BIT,
    MAGIC,
    PING,
    Frame,
    FrameParser,
    decode_error,
    encode_compress_request,
    encode_frame,
    encode_overload_error,
    encode_uvarint,
    raise_for_error,
    response_type,
)
from repro.service.resilience import RetryPolicy


def _array(n=512):
    return np.cumsum(np.random.default_rng(5).normal(0, 1, n))


def _exchange(host, port, blob, expected_frames):
    """Send raw bytes; collect ``expected_frames`` response frames."""
    parser = FrameParser()
    frames = []
    with socket.create_connection((host, port), timeout=30) as sock:
        sock.sendall(blob)
        while len(frames) < expected_frames:
            data = sock.recv(1 << 16)
            assert data, "server closed before answering"
            frames.extend(parser.feed(data))
    return frames


# ----------------------------------------------------------------------
# The flagged frame header on the wire
# ----------------------------------------------------------------------
def test_unflagged_frames_are_byte_identical_to_v1():
    blob = encode_frame(PING, 1, b"x")
    assert blob[len(MAGIC)] == PING  # no flag bit without a deadline
    assert blob[len(MAGIC)] & FLAG_BIT == 0


def test_deadline_header_round_trips():
    blob = encode_frame(COMPRESS, 7, b"payload", 1234)
    assert blob[len(MAGIC)] == COMPRESS | FLAG_BIT
    frames = FrameParser().feed(blob)
    assert len(frames) == 1
    frame = frames[0]
    assert frame.frame_type == COMPRESS  # the parser strips the flag bit
    assert frame.request_id == 7
    assert frame.deadline_ms == 1234
    assert frame.payload == b"payload"


def test_deadline_zero_is_a_valid_budget():
    frame = FrameParser().feed(encode_frame(PING, 1, b"", 0))[0]
    assert frame.deadline_ms == 0


def test_deadline_refused_on_response_and_error_frames():
    with pytest.raises(ValueError):
        encode_frame(response_type(PING), 1, b"", 5)
    with pytest.raises(ValueError):
        encode_frame(ERROR, 1, b"", 5)
    with pytest.raises(ValueError):
        encode_frame(PING, 1, b"", -1)


def test_unknown_flag_bits_are_a_protocol_error():
    payload = b""
    blob = b"".join(
        [
            MAGIC,
            bytes([PING | FLAG_BIT]),
            encode_uvarint(1),  # request id
            encode_uvarint(0x08),  # an undefined flag bit
            encode_uvarint(len(payload)),
            payload,
            (zlib.crc32(payload) & 0xFFFFFFFF).to_bytes(4, "little"),
        ]
    )
    with pytest.raises(ProtocolError, match="flag"):
        FrameParser().feed(blob)


def test_overload_error_carries_retry_after_hint():
    payload = encode_overload_error("admission gate full", 25)
    code, message = decode_error(payload)
    assert code == ERR_OVERLOADED
    with pytest.raises(ServerOverloadedError) as info:
        raise_for_error(Frame(ERROR, 1, payload))
    assert info.value.retry_after_ms == 25
    assert "admission gate full" in str(info.value)


# ----------------------------------------------------------------------
# Server-side deadline enforcement
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def server():
    handle = serve_background(batch_window=0.002)
    yield handle
    handle.stop()


def test_expired_deadline_rejected_before_queueing(server):
    payload = encode_compress_request(_array(), "gorilla", 128)
    blob = encode_frame(COMPRESS, 1, payload, 0)  # 0 ms budget: dead on arrival
    blob += encode_frame(PING, 2, b"still-alive")  # connection must survive
    frames = _exchange(server.host, server.port, blob, 2)
    assert frames[0].frame_type == ERROR
    code, message = decode_error(frames[0].payload)
    assert code == ERR_DEADLINE
    assert "expired" in message
    assert frames[1].frame_type == response_type(PING)
    assert frames[1].payload == b"still-alive"
    assert server.metrics.snapshot()["resilience"]["deadline_rejected"] >= 1


def test_generous_deadline_serves_identical_bytes(server):
    from repro.api import compress_array

    arr = _array()
    with ServiceClient(
        server.host, server.port, propagate_deadline=True, deadline=30.0
    ) as client:
        served = client.compress_array(arr, "gorilla", chunk_elements=128)
    assert served == compress_array(arr, "gorilla", chunk_elements=128)


def test_deadline_exceeded_error_is_typed_not_failover_bait(server):
    with ServiceClient(server.host, server.port) as client:
        with pytest.raises(DeadlineExceededError):
            # Hand-roll the frame so only the *server-side* check fires.
            payload = encode_compress_request(_array(), "gorilla", 128)
            request_id = client._request_id()
            conn = client._checkout()
            try:
                frame = conn.request(
                    COMPRESS, request_id, payload,
                    timeout=30.0, deadline_ms=0,
                )
                raise_for_error(frame)
            finally:
                conn.close()
    assert not issubclass(DeadlineExceededError, TimeoutError)


# ----------------------------------------------------------------------
# Admission control and shedding
# ----------------------------------------------------------------------
def test_admission_gate_sheds_with_retryable_overload():
    handle = serve_background(
        batch_window=0.05, max_queued_requests=1, shed_retry_after_ms=7
    )
    try:
        payload = encode_compress_request(_array(), "gorilla", 128)
        blob = b"".join(
            encode_frame(COMPRESS, request_id, payload)
            for request_id in (1, 2, 3)
        )
        frames = _exchange(handle.host, handle.port, blob, 3)
        by_id = {frame.request_id: frame for frame in frames}
        assert by_id[1].frame_type == response_type(COMPRESS)
        shed = [by_id[2], by_id[3]]
        assert all(frame.frame_type == ERROR for frame in shed)
        for frame in shed:
            code, _ = decode_error(frame.payload)
            assert code == ERR_OVERLOADED
            with pytest.raises(ServerOverloadedError) as info:
                raise_for_error(frame)
            assert info.value.retry_after_ms == 7
        snapshot = handle.metrics.snapshot()
        assert snapshot["resilience"]["shed_requests"] >= 2
    finally:
        handle.stop()


def test_gate_never_starves_a_lone_request():
    # A request larger than max_queued_bytes must still be admitted
    # when the gate is empty — shedding it forever would livelock.
    handle = serve_background(batch_window=0.0, max_queued_bytes=1)
    try:
        arr = _array(256)
        with ServiceClient(handle.host, handle.port) as client:
            blob = client.compress_array(arr, "gorilla", chunk_elements=128)
            assert np.array_equal(client.decompress_array(blob), arr)
    finally:
        handle.stop()


# ----------------------------------------------------------------------
# Client retry-on-overload (stub server speaking raw FCS)
# ----------------------------------------------------------------------
class _StubServer:
    """Answers each incoming frame from a scripted response list."""

    def __init__(self, responses):
        self.responses = list(responses)
        self.handled = 0
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.host, self.port = self._sock.getsockname()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        try:
            conn, _ = self._sock.accept()
        except OSError:
            return
        parser = FrameParser()
        with conn:
            while self.handled < len(self.responses):
                try:
                    data = conn.recv(1 << 16)
                except OSError:
                    return
                if not data:
                    return
                for frame in parser.feed(data):
                    conn.sendall(self.responses[self.handled](frame))
                    self.handled += 1

    def close(self):
        try:
            self._sock.close()
        except OSError:
            pass
        self._thread.join(timeout=5.0)


def _overload(retry_after_ms):
    return lambda frame: encode_frame(
        ERROR, frame.request_id, encode_overload_error("busy", retry_after_ms)
    )


def _pong(frame):
    return encode_frame(response_type(PING), frame.request_id, frame.payload)


def test_client_retries_shed_requests_honoring_the_hint():
    stub = _StubServer([_overload(40), _pong])
    try:
        with ServiceClient(
            stub.host, stub.port,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.001),
        ) as client:
            elapsed = client.ping()
        assert stub.handled == 2
        assert elapsed >= 0.04  # waited out the server's 40 ms hint
    finally:
        stub.close()


def test_overload_raises_typed_once_attempts_are_spent():
    stub = _StubServer([_overload(1), _overload(1)])
    try:
        with ServiceClient(
            stub.host, stub.port,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.001),
        ) as client:
            with pytest.raises(ServerOverloadedError):
                client.ping()
        assert stub.handled == 2
    finally:
        stub.close()


# ----------------------------------------------------------------------
# Connection-pool leak regression (the satellite fix)
# ----------------------------------------------------------------------
def _fd_count():
    return len(os.listdir("/proc/self/fd"))


def test_no_fd_leak_on_timeout_path():
    # A listener whose backlog accepts the TCP handshake but never
    # answers: every request times out after the socket was dialed.
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(16)
    host, port = listener.getsockname()
    try:
        with ServiceClient(host, port, deadline=0.15, retry=0) as client:
            baseline = _fd_count()
            for _ in range(8):
                with pytest.raises(TimeoutError):
                    client.ping()
            assert _fd_count() <= baseline
    finally:
        listener.close()


def test_no_fd_leak_on_retry_path():
    # A stub that accepts and instantly closes: every attempt eats a
    # fresh connection, all of which must be closed when the retries
    # are spent.
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(16)
    host, port = listener.getsockname()
    stop = threading.Event()

    def slam():
        while not stop.is_set():
            try:
                conn, _ = listener.accept()
            except OSError:
                return
            conn.close()

    thread = threading.Thread(target=slam, daemon=True)
    thread.start()
    try:
        with ServiceClient(
            host, port,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.001),
        ) as client:
            baseline = _fd_count()
            for _ in range(6):
                with pytest.raises(ProtocolError, match="attempt"):
                    client.ping()
            assert _fd_count() <= baseline + 1  # the in-flight accept slot
    finally:
        stop.set()
        listener.close()
        thread.join(timeout=5.0)
