"""The unified client surface: ``connect()``, the ABC, kwarg shims.

``ServiceClient`` and ``ClusterClient`` must be drop-in
interchangeable behind :class:`repro.CompressionClient` — the same
helper drives a byte round-trip through both without knowing which
topology it holds.  The canonical kwarg spellings (``deadline=``,
``retry=``) must work on every client, the deprecated ones
(``timeout=``, ``retries=``) must warn exactly once and keep working,
and passing both spellings is a hard ``TypeError``.

Also audits every public module's ``__all__``: each exported name must
resolve, so ``from repro.x import *`` never breaks.
"""

import importlib
import pkgutil
import warnings

import numpy as np
import pytest

import repro
from repro import CompressionClient, connect
from repro.client import deprecated_kwarg
from repro.cluster.client import ClusterClient
from repro.service import ServiceClient, serve_background


@pytest.fixture(scope="module")
def handle():
    server = serve_background()
    yield server
    server.stop()


@pytest.fixture()
def array():
    return np.linspace(-1.0, 1.0, 4096).astype(np.float64)


def round_trip(client: CompressionClient, array) -> bool:
    """Topology-blind workload — works on any CompressionClient."""
    blob = client.compress_array(array, "gorilla")
    restored = client.decompress_array(blob)
    explain = client.select_explain(array)
    ping = client.ping()  # float (service) or per-node dict (cluster)
    alive = all(ping.values()) if isinstance(ping, dict) else ping >= 0.0
    return (
        np.array_equal(restored, array)
        and alive
        and isinstance(client.stats(), dict)
        and isinstance(explain, dict)
    )


class TestConnect:
    def test_single_address_dials_service_client(self, handle, array):
        with connect(f"{handle.host}:{handle.port}") as client:
            assert isinstance(client, ServiceClient)
            assert isinstance(client, CompressionClient)
            assert round_trip(client, array)

    def test_host_port_tuple(self, handle, array):
        with connect((handle.host, handle.port)) as client:
            assert isinstance(client, ServiceClient)
            assert round_trip(client, array)

    def test_cluster_seeds_dial_cluster_client(self, handle, array):
        seeds = [f"{handle.host}:{handle.port}"]
        with connect(cluster_seeds=seeds) as client:
            assert isinstance(client, ClusterClient)
            assert isinstance(client, CompressionClient)
            assert round_trip(client, array)

    def test_multi_address_target_means_cluster(self, handle):
        addr = f"{handle.host}:{handle.port}"
        with connect([addr, addr]) as client:
            assert isinstance(client, ClusterClient)

    def test_canonical_kwargs_forwarded(self, handle):
        with connect(
            f"{handle.host}:{handle.port}", deadline=3.5, retry=1
        ) as client:
            assert client.deadline == 3.5

    def test_bad_usage_typed(self):
        with pytest.raises(TypeError):
            connect()
        with pytest.raises(TypeError):
            connect("a:1", cluster_seeds=["b:2"])
        with pytest.raises(ValueError):
            connect("no-port-here")


class TestDeprecatedKwargs:
    def test_service_client_timeout_alias_warns(self, handle):
        with pytest.warns(DeprecationWarning, match="'timeout'"):
            client = ServiceClient(handle.host, handle.port, timeout=2.0)
        with client:
            assert client.deadline == 2.0
            assert client.timeout == 2.0  # legacy property still reads

    def test_service_client_retries_alias_warns(self, handle):
        with pytest.warns(DeprecationWarning, match="'retries'"):
            client = ServiceClient(handle.host, handle.port, retries=2)
        client.close()

    def test_both_spellings_is_an_error(self, handle):
        with pytest.raises(TypeError, match="deprecated alias"):
            ServiceClient(handle.host, handle.port, deadline=1.0, timeout=2.0)

    def test_cluster_client_timeout_alias_warns(self, handle):
        with pytest.warns(DeprecationWarning, match="'timeout'"):
            client = ClusterClient(
                [(handle.host, handle.port)], timeout=4.0
            )
        with client:
            assert client.deadline == 4.0

    def test_canonical_spelling_does_not_warn(self, handle):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with ServiceClient(
                handle.host, handle.port, deadline=2.0, retry=1
            ) as client:
                assert client.deadline == 2.0

    def test_helper_contract(self):
        assert deprecated_kwarg("old", "new", None, 7) == 7
        with pytest.warns(DeprecationWarning):
            assert deprecated_kwarg("old", "new", 3, None) == 3
        with pytest.raises(TypeError):
            deprecated_kwarg("old", "new", 3, 7)


class TestPublicSurface:
    def test_top_level_all(self):
        for name in ("compress_array", "decompress_array", "open_stream",
                     "connect", "CompressionClient"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_every_all_name_resolves(self):
        modules = ["repro"]
        for info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            modules.append(info.name)
        checked = 0
        for name in modules:
            module = importlib.import_module(name)
            exported = getattr(module, "__all__", None)
            if exported is None:
                continue
            assert len(set(exported)) == len(exported), (
                f"{name}.__all__ has duplicates"
            )
            for symbol in exported:
                assert hasattr(module, symbol), (
                    f"{name}.__all__ exports missing name {symbol!r}"
                )
            checked += 1
        assert checked >= 20  # the audit actually covered the tree
