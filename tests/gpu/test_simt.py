"""Tests for SIMT helpers: warp chunks, prefix sums, divergence."""

import numpy as np
import pytest

from repro.gpu.simt import (
    compact_chunks,
    exclusive_prefix_sum,
    measure_divergence,
    pad_to_multiple,
    warp_chunks,
)


def test_pad_to_multiple():
    arr, pad = pad_to_multiple(np.arange(10, dtype=np.float64), 32)
    assert len(arr) == 32 and pad == 22
    arr2, pad2 = pad_to_multiple(np.arange(32, dtype=np.float64), 32)
    assert pad2 == 0 and len(arr2) == 32


def test_pad_requires_flat():
    with pytest.raises(ValueError):
        pad_to_multiple(np.zeros((2, 2)), 4)


def test_warp_chunks_shape():
    chunks = warp_chunks(np.arange(64), 32)
    assert chunks.shape == (2, 32)


def test_warp_chunks_rejects_ragged():
    with pytest.raises(ValueError):
        warp_chunks(np.arange(33), 32)


def test_exclusive_prefix_sum():
    np.testing.assert_array_equal(
        exclusive_prefix_sum(np.array([3, 1, 4])), [0, 3, 4, 8]
    )


def test_compact_chunks_offsets():
    stream, offsets = compact_chunks([b"ab", b"", b"cdef"])
    assert stream == b"abcdef"
    np.testing.assert_array_equal(offsets, [0, 2, 2, 6])


def test_divergence_uniform_warps():
    assert measure_divergence(np.ones(64, dtype=bool)) == 0.0
    assert measure_divergence(np.zeros(64, dtype=bool)) == 0.0


def test_divergence_mixed_warp():
    lanes = np.zeros(64, dtype=bool)
    lanes[:16] = True  # first warp diverges, second does not
    assert measure_divergence(lanes) == pytest.approx(0.5)


def test_divergence_empty():
    assert measure_divergence(np.array([], dtype=bool)) == 0.0
