"""Tests for the simulated GPU device."""

import pytest

from repro.gpu.device import DeviceModel, ExecutionTrace


def test_transfer_accounting():
    dev = DeviceModel()
    dev.copy_to_device(1000)
    dev.copy_to_host(400)
    assert dev.trace.h2d_bytes == 1000
    assert dev.trace.d2h_bytes == 400


def test_reset_clears_trace():
    dev = DeviceModel()
    dev.copy_to_device(10)
    dev.launch("k", 1, 32)
    dev.reset()
    assert dev.trace.h2d_bytes == 0
    assert dev.trace.launch_count == 0


def test_launch_validation():
    dev = DeviceModel()
    with pytest.raises(ValueError):
        dev.launch("k", 0, 32)
    with pytest.raises(ValueError):
        dev.launch("k", 1, 10**6)


def test_negative_transfer_rejected():
    with pytest.raises(ValueError):
        DeviceModel().copy_to_device(-1)


def test_transfer_seconds_scale_with_bytes():
    trace = ExecutionTrace()
    dev = DeviceModel()
    dev.copy_to_device(10**9)
    small = ExecutionTrace()
    t_big = dev.trace.transfer_seconds()
    assert t_big > 0.1  # ~1 GB over ~6 GB/s
    assert small.transfer_seconds() == 0.0


def test_launch_seconds():
    dev = DeviceModel()
    for _ in range(10):
        dev.launch("k", 4, 128)
    assert dev.trace.launch_seconds() == pytest.approx(10 * 8e-6)
