"""Test package."""
