"""Tests for dataset materialization and caching."""

import numpy as np
import pytest

from repro.data.loader import load, load_spec
from repro.data.catalog import get_spec


def test_load_returns_readonly_shared_array():
    a = load("citytemp", 2048)
    b = load("citytemp", 2048)
    assert a is b  # cached
    with pytest.raises(ValueError):
        a[0] = 1.0


def test_different_budgets_differ():
    small = load("citytemp", 1024)
    large = load("citytemp", 4096)
    assert small.size < large.size


def test_load_spec_equivalent():
    spec = get_spec("wave")
    np.testing.assert_array_equal(load_spec(spec, 2048), load("wave", 2048))


def test_dtype_matches_catalog():
    assert load("rsim", 1024).dtype == np.float32
    assert load("msg-bt", 1024).dtype == np.float64
