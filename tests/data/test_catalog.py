"""Tests for the Table 3 dataset catalog."""

import numpy as np
import pytest

from repro.data.catalog import CATALOG, dataset_names, domains, get_spec
from repro.errors import DatasetError


def test_thirty_three_datasets():
    assert len(CATALOG) == 33


def test_domain_counts_match_table3():
    counts = {d: len(dataset_names(d)) for d in domains()}
    assert counts == {"HPC": 10, "TS": 8, "OBS": 8, "DB": 7}


def test_paper_sizes_match_extents():
    for spec in CATALOG:
        elements = int(np.prod(spec.paper_extent))
        assert elements * spec.numpy_dtype.itemsize == spec.paper_bytes, spec.name


def test_gfc_limit_flags_match_table4_dashes():
    # The paper's Table 4 has exactly 11 "-" cells in the GFC column.
    over = [s.name for s in CATALOG if s.exceeds_gfc_limit]
    assert len(over) == 11
    assert "astro-mhd" in over
    assert "wave" not in over  # exactly 512 MB: allowed
    assert "hdr-night" not in over  # exactly 512 MB: allowed


def test_scaled_extent_preserves_rank():
    for spec in CATALOG:
        scaled = spec.scaled_extent(16384)
        assert len(scaled) == spec.ndim
        elements = int(np.prod(scaled))
        assert elements <= 4 * 16384, spec.name


def test_scaled_extent_keeps_column_axes():
    spec = get_spec("jane-street")
    assert spec.scaled_extent(16384)[-1] == 136
    spec = get_spec("wesad-chest")
    assert spec.scaled_extent(16384)[-1] == 8


def test_scaled_extent_noop_when_small_target_is_bigger():
    spec = get_spec("citytemp")
    assert spec.scaled_extent(10**9) == spec.paper_extent


def test_unknown_dataset():
    with pytest.raises(DatasetError, match="unknown dataset"):
        get_spec("enron-emails")


def test_dtype_mix_matches_table3():
    singles = [s for s in CATALOG if s.dtype == "f32"]
    doubles = [s for s in CATALOG if s.dtype == "f64"]
    assert len(singles) == 20
    assert len(doubles) == 13
