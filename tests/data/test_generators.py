"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data.catalog import CATALOG, get_spec
from repro.data.generators import available_generators, generate
from repro.errors import DatasetError


@pytest.mark.parametrize("spec", CATALOG, ids=lambda s: s.name)
def test_every_dataset_generates(spec):
    extent = spec.scaled_extent(4096)
    array = generate(spec, extent)
    assert array.shape == extent
    assert array.dtype == spec.numpy_dtype
    assert np.isfinite(array).all(), "generators must not emit NaN/Inf"


def test_deterministic_by_seed():
    spec = get_spec("turbulence")
    extent = spec.scaled_extent(4096)
    a = generate(spec, extent, seed=1)
    b = generate(spec, extent, seed=1)
    c = generate(spec, extent, seed=2)
    np.testing.assert_array_equal(a, b)
    assert not np.array_equal(a, c)


def test_datasets_are_distinct():
    a = generate(get_spec("turbulence"), (16, 16, 16))
    b = generate(get_spec("miranda3d"), (16, 16, 16))
    assert not np.array_equal(a, b)


def test_sparse_field_is_mostly_zero():
    spec = get_spec("astro-mhd")
    array = generate(spec, spec.scaled_extent(16384))
    assert (array == 0).mean() > 0.9


def test_sensor_respects_decimals():
    spec = get_spec("citytemp")
    array = generate(spec, (4096,)).astype(np.float64)
    assert np.allclose(array, np.round(array, 1))


def test_prices_repeat_heavily():
    spec = get_spec("gas-price")
    array = generate(spec, spec.scaled_extent(8192))
    unique_fraction = len(np.unique(array)) / array.size
    assert unique_fraction < 0.5


def test_market_data_near_full_entropy():
    spec = get_spec("jane-street")
    array = generate(spec, spec.scaled_extent(8192))
    unique_fraction = len(np.unique(array)) / array.size
    assert unique_fraction > 0.99


def test_tpc_money_has_cent_granularity():
    spec = get_spec("tpcH-order")
    array = generate(spec, (4096,)).astype(np.float64)
    cents = array * 100
    assert np.allclose(cents, np.round(cents))


def test_unknown_generator_raises():
    from dataclasses import replace

    spec = replace(get_spec("citytemp"), generator="fractal-unicorn")
    with pytest.raises(DatasetError, match="unknown generator"):
        generate(spec, (64,))


def test_generator_registry_covers_catalog():
    names = set(available_generators())
    for spec in CATALOG:
        assert spec.generator in names
