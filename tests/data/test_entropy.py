"""Tests for entropy estimators."""

import numpy as np
import pytest

from repro.data.entropy import byte_entropy, value_entropy


def test_constant_array_zero_entropy():
    assert value_entropy(np.full(1000, 3.14)) == 0.0


def test_distinct_values_log2_n():
    arr = np.arange(1024, dtype=np.float64)
    assert value_entropy(arr) == pytest.approx(10.0)


def test_two_value_mix():
    arr = np.array([1.0] * 500 + [2.0] * 500)
    assert value_entropy(arr) == pytest.approx(1.0)


def test_nan_payloads_are_distinct_values():
    a = np.frombuffer(np.uint64(0x7FF8000000000001).tobytes(), dtype=np.float64)
    b = np.frombuffer(np.uint64(0x7FF8000000000002).tobytes(), dtype=np.float64)
    arr = np.concatenate([a, b])
    assert value_entropy(arr) == pytest.approx(1.0)


def test_empty():
    assert value_entropy(np.array([], dtype=np.float64)) == 0.0
    assert byte_entropy(np.array([], dtype=np.float64)) == 0.0


def test_byte_entropy_bounds():
    rng = np.random.default_rng(0)
    noisy = rng.normal(0, 1, 5000)
    h = byte_entropy(noisy)
    assert 0.0 < h <= 8.0
    assert byte_entropy(np.zeros(1000)) == 0.0


def test_ordering_matches_table3_classes():
    # astro-mhd (sparse) << gas-price (prices) << jane-street (market).
    from repro.data import load

    sparse = value_entropy(load("astro-mhd", 8192))
    prices = value_entropy(load("gas-price", 8192))
    market = value_entropy(load("jane-street", 8192))
    assert sparse < prices < market
