"""Test package."""
