"""External-corpus manifest: validation, checksums, offline handling."""

import hashlib
import json

import numpy as np
import pytest

from repro.data.catalog import (
    MANIFEST_VERSION,
    ExternalCorpus,
    load_manifest,
)
from repro.errors import DatasetError


def _entry(**overrides) -> dict:
    entry = {
        "name": "sst-slice",
        "domain": "OBS",
        "dtype": "f32",
        "url": "https://example.org/sst-slice.bin",
        "sha256": "0" * 64,
    }
    entry.update(overrides)
    return entry


def _write_manifest(tmp_path, entries, version=MANIFEST_VERSION):
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps({"version": version, "datasets": entries}))
    return path


@pytest.fixture()
def corpus_dir(tmp_path):
    """A corpus root with two datasets on disk and one offline."""
    raw = np.linspace(0.0, 4.0, 600, dtype=np.float32)
    raw_blob = raw.tobytes()
    (tmp_path / "sst-slice.bin").write_bytes(raw_blob)

    arr = np.sin(np.linspace(0.0, 9.0, 500)).astype(np.float64)
    npy_path = tmp_path / "tides.npy"
    np.save(npy_path, arr)
    npy_blob = npy_path.read_bytes()

    manifest = _write_manifest(
        tmp_path,
        [
            _entry(sha256=hashlib.sha256(raw_blob).hexdigest()),
            _entry(
                name="tides",
                domain="TS",
                dtype="f64",
                filename="tides.npy",
                sha256=hashlib.sha256(npy_blob).hexdigest(),
            ),
            _entry(name="ghost", domain="HPC", dtype="f64"),
        ],
    )
    return manifest, raw, arr


def test_load_manifest_round_trip(tmp_path):
    path = _write_manifest(tmp_path, [_entry()])
    entries = load_manifest(path)
    assert entries[0].name == "sst-slice"
    assert entries[0].filename == "sst-slice.bin"  # defaulted
    assert entries[0].numpy_dtype == np.dtype(np.float32)


def test_manifest_rejects_wrong_version(tmp_path):
    path = _write_manifest(tmp_path, [_entry()], version=99)
    with pytest.raises(DatasetError, match="version"):
        load_manifest(path)


def test_manifest_rejects_missing_fields(tmp_path):
    entry = _entry()
    del entry["sha256"]
    path = _write_manifest(tmp_path, [entry])
    with pytest.raises(DatasetError, match="sha256"):
        load_manifest(path)


def test_manifest_rejects_bad_domain_and_dtype(tmp_path):
    with pytest.raises(DatasetError, match="domain"):
        load_manifest(_write_manifest(tmp_path, [_entry(domain="WEB")]))
    with pytest.raises(DatasetError, match="dtype"):
        load_manifest(_write_manifest(tmp_path, [_entry(dtype="i64")]))


def test_manifest_rejects_bad_sha256(tmp_path):
    path = _write_manifest(tmp_path, [_entry(sha256="abc123")])
    with pytest.raises(DatasetError, match="64 hex"):
        load_manifest(path)


def test_manifest_rejects_duplicates_and_catalog_shadowing(tmp_path):
    path = _write_manifest(tmp_path, [_entry(), _entry()])
    with pytest.raises(DatasetError, match="duplicate"):
        load_manifest(path)
    path = _write_manifest(tmp_path, [_entry(name="citytemp")])
    with pytest.raises(DatasetError, match="shadows"):
        load_manifest(path)


def test_manifest_rejects_non_json(tmp_path):
    path = tmp_path / "manifest.json"
    path.write_text("not json {")
    with pytest.raises(DatasetError, match="not JSON"):
        load_manifest(path)


def test_load_raw_binary_checksum_validated(corpus_dir):
    manifest, raw, _ = corpus_dir
    corpus = ExternalCorpus.from_manifest(manifest)
    loaded = corpus.load("sst-slice")
    assert loaded.dtype == np.float32
    np.testing.assert_array_equal(loaded, raw)
    assert not loaded.flags.writeable


def test_load_npy_checksum_validated(corpus_dir):
    manifest, _, arr = corpus_dir
    corpus = ExternalCorpus.from_manifest(manifest)
    loaded = corpus.load("tides")
    assert loaded.dtype == np.float64
    np.testing.assert_array_equal(loaded, arr)


def test_corrupted_file_fails_checksum(corpus_dir):
    manifest, _, _ = corpus_dir
    corpus = ExternalCorpus.from_manifest(manifest)
    path = corpus.path("sst-slice")
    blob = bytearray(path.read_bytes())
    blob[7] ^= 0xFF  # single-bit-ish rot
    path.write_bytes(bytes(blob))
    with pytest.raises(DatasetError, match="checksum"):
        corpus.load("sst-slice")


def test_offline_dataset_is_graceful(corpus_dir):
    manifest, _, _ = corpus_dir
    corpus = ExternalCorpus.from_manifest(manifest)
    assert not corpus.available("ghost")
    assert corpus.status()["ghost"] == "missing"
    assert corpus.status()["sst-slice"] == "available"
    with pytest.raises(DatasetError, match="offline"):
        corpus.load("ghost")


def test_unknown_name_lists_known(corpus_dir):
    manifest, _, _ = corpus_dir
    corpus = ExternalCorpus.from_manifest(manifest)
    with pytest.raises(DatasetError, match="sst-slice"):
        corpus.entry("nope")


def test_spec_synthesized_from_local_file(corpus_dir):
    manifest, raw, _ = corpus_dir
    corpus = ExternalCorpus.from_manifest(manifest)
    spec = corpus.spec("sst-slice")
    assert spec.generator == "external"
    assert spec.domain == "OBS"
    assert spec.paper_bytes == raw.nbytes
    assert spec.paper_extent == (raw.size,)
    # Offline datasets still produce a spec (zero-sized).
    assert corpus.spec("ghost").paper_bytes == 0


def test_raw_file_must_hold_whole_elements(tmp_path):
    blob = b"\x00" * 10  # not a multiple of 8
    (tmp_path / "odd.bin").write_bytes(blob)
    manifest = _write_manifest(
        tmp_path,
        [
            _entry(
                name="odd",
                dtype="f64",
                filename="odd.bin",
                sha256=hashlib.sha256(blob).hexdigest(),
            )
        ],
    )
    corpus = ExternalCorpus.from_manifest(manifest)
    with pytest.raises(DatasetError, match="whole number"):
        corpus.load("odd")
