"""Tests for the LZ77 + Huffman (zstd-style) codec."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.encodings.lz4 import lz4_compress
from repro.encodings.zstd_like import zstd_compress, zstd_decompress
from repro.errors import CorruptStreamError


def test_empty():
    assert zstd_decompress(zstd_compress(b"")) == b""


def test_text_compresses():
    data = b"the quick brown fox jumps over the lazy dog " * 200
    blob = zstd_compress(data)
    assert zstd_decompress(blob) == data
    assert len(blob) < len(data) / 8


def test_beats_lz4_on_biased_literals():
    # Biased-but-unmatched bytes: the entropy stage is the difference.
    import random

    rnd = random.Random(5)
    data = bytes(rnd.choice(b"\x00\x00\x00\x01\x02\x03") for _ in range(8000))
    assert len(zstd_compress(data)) < len(lz4_compress(data))


def test_random_data_bounded_expansion():
    data = os.urandom(8000)
    blob = zstd_compress(data)
    assert zstd_decompress(blob) == data
    assert len(blob) < len(data) + 64


def test_truncated_stream_detected():
    blob = zstd_compress(b"hello world " * 100)
    with pytest.raises(CorruptStreamError):
        zstd_decompress(blob[:8])


def test_size_mismatch_detected():
    blob = bytearray(zstd_compress(b"abcdef" * 10))
    blob[0] ^= 0x01  # flip the original-size varint
    with pytest.raises(CorruptStreamError):
        zstd_decompress(bytes(blob))


@settings(max_examples=60)
@given(st.binary(max_size=3000))
def test_roundtrip_property(data):
    assert zstd_decompress(zstd_compress(data)) == data
