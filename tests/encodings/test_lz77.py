"""Tests for the hash-chain LZ77 matcher."""

import os

from hypothesis import given, settings, strategies as st

from repro.encodings.lz77 import Token, find_tokens, reassemble


def test_empty():
    assert find_tokens(b"") == []


def test_short_input_is_literal():
    tokens = find_tokens(b"ab")
    assert tokens == [Token(b"ab", 0, 0)]


def test_repetition_found():
    tokens = find_tokens(b"abcdabcdabcdabcd")
    assert any(t.match_length >= 4 for t in tokens)
    assert reassemble(tokens) == b"abcdabcdabcdabcd"


def test_overlapping_match():
    data = b"a" * 100
    tokens = find_tokens(data)
    assert reassemble(tokens) == data
    # A single token should cover nearly the whole run.
    assert len(tokens) <= 3


def test_window_limits_distance():
    data = b"0123456789abcdef" + b"x" * 200 + b"0123456789abcdef"
    tokens = find_tokens(data, window=64)
    for t in tokens:
        if t.match_length:
            assert t.match_distance <= 64


def test_max_match_cap():
    data = b"z" * 500
    tokens = find_tokens(data, max_match=32)
    for t in tokens:
        assert t.match_length <= 32
    assert reassemble(tokens) == data


def test_lazy_not_worse_than_greedy():
    data = (b"abcde" * 40 + os.urandom(64)) * 8
    greedy = find_tokens(data)
    lazy = find_tokens(data, lazy=True)
    assert reassemble(greedy) == data
    assert reassemble(lazy) == data

    def cost(tokens):
        return sum(len(t.literals) + 3 for t in tokens)

    assert cost(lazy) <= cost(greedy) + 8


def test_random_data_mostly_literal():
    data = os.urandom(5000)
    tokens = find_tokens(data)
    assert reassemble(tokens) == data


@settings(max_examples=60)
@given(st.binary(max_size=2000), st.booleans())
def test_roundtrip_property(data, lazy):
    assert reassemble(find_tokens(data, lazy=lazy)) == data
