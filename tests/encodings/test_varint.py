"""Tests for LEB128 varints and zigzag."""

import pytest
from hypothesis import given, strategies as st

from repro.encodings.varint import (
    decode_svarint,
    decode_uvarint,
    encode_svarint,
    encode_uvarint,
    zigzag_decode,
    zigzag_encode,
)
from repro.errors import CorruptStreamError


@pytest.mark.parametrize(
    "value,encoded",
    [(0, b"\x00"), (1, b"\x01"), (127, b"\x7f"), (128, b"\x80\x01"),
     (300, b"\xac\x02")],
)
def test_known_encodings(value, encoded):
    assert encode_uvarint(value) == encoded
    assert decode_uvarint(encoded) == (value, len(encoded))


def test_negative_uvarint_rejected():
    with pytest.raises(ValueError):
        encode_uvarint(-1)


def test_truncated_stream():
    with pytest.raises(CorruptStreamError):
        decode_uvarint(b"\x80")


def test_oversized_varint_rejected():
    with pytest.raises(CorruptStreamError):
        decode_uvarint(b"\xff" * 11)


def test_offset_decoding():
    data = b"\x00" + encode_uvarint(999)
    assert decode_uvarint(data, 1)[0] == 999


@pytest.mark.parametrize("value,expected", [(0, 0), (-1, 1), (1, 2), (-2, 3)])
def test_zigzag_known(value, expected):
    assert zigzag_encode(value) == expected
    assert zigzag_decode(expected) == value


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_uvarint_roundtrip(value):
    assert decode_uvarint(encode_uvarint(value))[0] == value


@given(st.integers(min_value=-(2**62), max_value=2**62))
def test_svarint_roundtrip(value):
    assert decode_svarint(encode_svarint(value))[0] == value
