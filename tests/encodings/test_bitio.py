"""Unit and property tests for the MSB-first bit stream."""

import pytest
from hypothesis import given, strategies as st

from repro.encodings.bitio import BitReader, BitWriter
from repro.errors import CorruptStreamError


class TestBitWriter:
    def test_empty_stream(self):
        assert BitWriter().getvalue() == b""

    def test_single_bit(self):
        w = BitWriter()
        w.write_bit(1)
        assert w.getvalue() == b"\x80"

    def test_partial_byte_zero_padded(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        assert w.getvalue() == b"\xa0"

    def test_bit_length_tracks_writes(self):
        w = BitWriter()
        w.write_bits(0xFFFF, 13)
        assert len(w) == 13
        assert w.bit_length == 13

    def test_value_is_masked(self):
        w = BitWriter()
        w.write_bits(-1, 4)  # two's complement negative
        assert w.getvalue() == b"\xf0"

    def test_negative_nbits_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(1, -1)

    def test_zero_bits_is_noop(self):
        w = BitWriter()
        w.write_bits(123, 0)
        assert len(w) == 0

    def test_write_bytes_aligned(self):
        w = BitWriter()
        w.write_bytes(b"\x12\x34")
        assert w.getvalue() == b"\x12\x34"

    def test_write_bytes_unaligned(self):
        w = BitWriter()
        w.write_bit(1)
        w.write_bytes(b"\x00")
        assert w.getvalue() == b"\x80\x00"

    def test_align_to_byte(self):
        w = BitWriter()
        w.write_bit(1)
        w.align_to_byte()
        w.write_bits(0xAB, 8)
        assert w.getvalue() == b"\x80\xab"

    def test_unary(self):
        w = BitWriter()
        w.write_unary(3)
        r = BitReader(w.getvalue())
        assert r.read_unary() == 3

    def test_unary_long_run(self):
        w = BitWriter()
        w.write_unary(100)
        assert BitReader(w.getvalue()).read_unary() == 100

    def test_unary_negative_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_unary(-1)


class TestBitReader:
    def test_read_past_end_raises(self):
        r = BitReader(b"\xff")
        r.read_bits(8)
        with pytest.raises(CorruptStreamError):
            r.read_bits(1)

    def test_remaining(self):
        r = BitReader(b"\xff\x00")
        assert r.remaining == 16
        r.read_bits(5)
        assert r.remaining == 11

    def test_position(self):
        r = BitReader(b"\xff\x00")
        r.read_bits(9)
        assert r.position == 9

    def test_read_bytes_aligned(self):
        r = BitReader(b"\x01\x02\x03")
        assert r.read_bytes(2) == b"\x01\x02"

    def test_read_bytes_unaligned(self):
        r = BitReader(b"\x80\x80")
        r.read_bit()
        assert r.read_bytes(1) == b"\x01"

    def test_read_bytes_past_end(self):
        with pytest.raises(CorruptStreamError):
            BitReader(b"\x00").read_bytes(2)

    def test_align_to_byte(self):
        r = BitReader(b"\xff\xab")
        r.read_bits(3)
        r.align_to_byte()
        assert r.read_bits(8) == 0xAB

    def test_negative_nbits_rejected(self):
        with pytest.raises(ValueError):
            BitReader(b"\x00").read_bits(-2)


@given(
    st.lists(
        st.integers(min_value=1, max_value=64).flatmap(
            lambda n: st.tuples(st.integers(0, (1 << n) - 1), st.just(n))
        ),
        max_size=200,
    )
)
def test_roundtrip_property(fields):
    w = BitWriter()
    for value, nbits in fields:
        w.write_bits(value, nbits)
    r = BitReader(w.getvalue())
    for value, nbits in fields:
        assert r.read_bits(nbits) == value
