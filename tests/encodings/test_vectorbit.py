"""Vectorized bit-stream engine vs. the scalar BitWriter/BitReader oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.encodings.bitio import BitReader, BitWriter
from repro.encodings.vectorbit import field_offsets, pack_fields, unpack_fields
from repro.errors import CorruptStreamError


def _scalar_pack(values, widths) -> bytes:
    writer = BitWriter()
    for value, width in zip(values, widths):
        writer.write_bits(int(value), int(width))
    return writer.getvalue()


def _scalar_unpack(payload, widths) -> np.ndarray:
    reader = BitReader(payload)
    return np.array(
        [reader.read_bits(int(w)) for w in widths], dtype=np.uint64
    )


class TestPackFields:
    def test_empty(self):
        assert pack_fields([], []) == b""

    def test_all_zero_widths(self):
        assert pack_fields([5, 9], [0, 0]) == b""

    def test_single_full_width_field(self):
        value = 0xDEADBEEFCAFEF00D
        assert pack_fields([value], [64]) == value.to_bytes(8, "big")

    def test_values_masked_to_width(self):
        # write_bits masks to the low bits; pack_fields must match.
        assert pack_fields([0xFFF], [4]) == _scalar_pack([0xFFF], [4])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            pack_fields([1, 2], [3])

    def test_width_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pack_fields([1], [65])
        with pytest.raises(ValueError):
            pack_fields([1], [-1])

    @pytest.mark.parametrize("seed", range(8))
    def test_random_batches_byte_identical_to_bitwriter(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 400))
        widths = rng.integers(0, 65, n)
        values = rng.integers(0, 1 << 62, n, dtype=np.uint64) * 4 + (
            rng.integers(0, 4, n).astype(np.uint64)
        )
        assert pack_fields(values, widths) == _scalar_pack(values, widths)

    def test_assume_masked_matches_when_values_fit(self):
        rng = np.random.default_rng(99)
        widths = rng.integers(1, 65, 200)
        values = rng.integers(0, 1 << 62, 200, dtype=np.uint64) & (
            (np.uint64(1) << np.minimum(widths, 63).astype(np.uint64))
            - np.uint64(1)
        )
        assert pack_fields(values, widths, assume_masked=True) == _scalar_pack(
            values, widths
        )

    def test_trailing_partial_byte_zero_padded(self):
        # 3 bits -> one byte with zero padding, as BitWriter.getvalue.
        assert pack_fields([0b101], [3]) == bytes([0b1010_0000])


class TestUnpackFields:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_roundtrip_matches_bitreader(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(1, 400))
        widths = rng.integers(0, 65, n)
        values = rng.integers(0, 1 << 63, n, dtype=np.uint64)
        payload = _scalar_pack(values, widths)
        assert np.array_equal(
            unpack_fields(payload, widths), _scalar_unpack(payload, widths)
        )

    def test_explicit_offsets_extract_interleaved_fields(self):
        widths = np.array([5, 64, 1, 13, 32])
        values = np.array(
            [31, 2**64 - 1, 1, 8191, 2**31], dtype=np.uint64
        )
        payload = pack_fields(values, widths)
        offsets = field_offsets(widths)
        subset = [1, 3, 4]
        assert np.array_equal(
            unpack_fields(payload, widths[subset], offsets[subset]),
            values[subset],
        )

    def test_zero_width_fields_decode_to_zero(self):
        payload = pack_fields([7], [3])
        out = unpack_fields(payload, [0, 3, 0])
        assert out.tolist() == [0, 7, 0]

    def test_out_of_bounds_raises_corrupt_stream(self):
        with pytest.raises(CorruptStreamError):
            unpack_fields(b"\xff", [9])
        with pytest.raises(CorruptStreamError):
            unpack_fields(b"\xff\xff", [4], offsets=[-1])

    def test_empty(self):
        assert unpack_fields(b"", []).size == 0


class TestFieldOffsets:
    def test_cumulative(self):
        assert field_offsets([3, 0, 5, 64]).tolist() == [0, 3, 3, 8]


class TestLargeBatch:
    def test_two_hundred_thousand_fields_roundtrip(self):
        rng = np.random.default_rng(7)
        widths = rng.integers(1, 65, 200_000)
        values = rng.integers(0, 1 << 63, 200_000, dtype=np.uint64)
        payload = pack_fields(values, widths)
        mask = np.where(
            widths < 64,
            (np.uint64(1) << np.minimum(widths, 63).astype(np.uint64))
            - np.uint64(1),
            np.uint64(0xFFFFFFFFFFFFFFFF),
        )
        assert np.array_equal(unpack_fields(payload, widths), values & mask)
