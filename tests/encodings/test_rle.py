"""Tests for run-length coding."""

import pytest
from hypothesis import given, strategies as st

from repro.encodings.rle import rle_decode, rle_encode
from repro.errors import CorruptStreamError


def test_empty():
    assert rle_encode(b"") == b""
    assert rle_decode(b"") == b""


def test_single_run():
    assert rle_decode(rle_encode(b"\x00" * 1000)) == b"\x00" * 1000


def test_compresses_runs():
    data = b"\x07" * 10_000
    assert len(rle_encode(data)) < 10


def test_alternating_expands_gracefully():
    data = b"\x01\x02" * 100
    encoded = rle_encode(data)
    assert rle_decode(encoded) == data


def test_expected_length_validation():
    encoded = rle_encode(b"abc")
    with pytest.raises(CorruptStreamError):
        rle_decode(encoded, expected_length=99)


def test_expected_length_accepts_match():
    encoded = rle_encode(b"abc")
    assert rle_decode(encoded, expected_length=3) == b"abc"


@given(st.binary(max_size=2000))
def test_roundtrip_property(data):
    assert rle_decode(rle_encode(data), expected_length=len(data)) == data
