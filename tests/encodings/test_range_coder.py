"""Tests for the carry-less range coder and adaptive symbol model."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.encodings.range_coder import (
    AdaptiveSymbolModel,
    RangeDecoder,
    RangeEncoder,
)


def _roundtrip(symbols, alphabet):
    enc = RangeEncoder()
    model = AdaptiveSymbolModel(alphabet)
    for s in symbols:
        model.encode_symbol(enc, s)
    blob = enc.finish()
    dec = RangeDecoder(blob)
    model2 = AdaptiveSymbolModel(alphabet)
    return [model2.decode_symbol(dec) for _ in symbols], blob


def test_empty():
    out, blob = _roundtrip([], 4)
    assert out == []
    assert len(blob) == 4  # flush bytes


def test_single_symbol():
    out, _ = _roundtrip([2], 5)
    assert out == [2]


def test_skewed_compresses_toward_entropy():
    rnd = random.Random(3)
    symbols = [rnd.choice([0, 0, 0, 0, 0, 0, 1, 2]) for _ in range(8000)]
    out, blob = _roundtrip(symbols, 3)
    assert out == symbols
    assert len(blob) < 8000 * 0.25  # ~1.2 bits/symbol at this skew


def test_model_total_stays_bounded():
    model = AdaptiveSymbolModel(4, increment=4096)
    for _ in range(1000):
        model.update(1)
    assert model.total <= (1 << 16)


def test_invalid_frequencies_rejected():
    enc = RangeEncoder()
    with pytest.raises(ValueError):
        enc.encode(0, 0, 10)
    with pytest.raises(ValueError):
        enc.encode(5, 10, 10)


def test_model_requires_symbols():
    with pytest.raises(ValueError):
        AdaptiveSymbolModel(0)


def test_large_alphabet():
    rnd = random.Random(9)
    symbols = [rnd.randrange(65) for _ in range(3000)]
    out, _ = _roundtrip(symbols, 65)
    assert out == symbols


@settings(max_examples=40)
@given(st.lists(st.integers(0, 15), max_size=400))
def test_roundtrip_property(symbols):
    out, _ = _roundtrip(symbols, 16)
    assert out == symbols
