"""Tests for the adaptive binary arithmetic coder."""

import random

from hypothesis import given, settings, strategies as st

from repro.encodings.arithmetic import (
    PROBABILITY_ONE,
    AdaptiveBitModel,
    BinaryArithmeticDecoder,
    BinaryArithmeticEncoder,
)


def _roundtrip(bits, probabilities=None):
    enc = BinaryArithmeticEncoder()
    if probabilities is None:
        probabilities = [PROBABILITY_ONE // 2] * len(bits)
    for bit, p in zip(bits, probabilities):
        enc.encode(bit, p)
    blob = enc.finish()
    dec = BinaryArithmeticDecoder(blob)
    return [dec.decode(p) for p in probabilities], blob


def test_empty_stream():
    out, _ = _roundtrip([])
    assert out == []


def test_uniform_probability_roundtrip():
    bits = [random.Random(1).random() < 0.5 for _ in range(2000)]
    out, blob = _roundtrip([int(b) for b in bits])
    assert out == [int(b) for b in bits]
    # Near-uniform bits cost about one bit each.
    assert len(blob) <= len(bits) // 8 + 8


def test_skewed_bits_near_entropy():
    rnd = random.Random(7)
    bits = [int(rnd.random() < 0.95) for _ in range(8000)]
    model = AdaptiveBitModel()
    enc = BinaryArithmeticEncoder()
    for b in bits:
        enc.encode(b, model.prob_one)
        model.update(b)
    blob = enc.finish()
    # H(0.95) ~ 0.286 bits; adaptive coding should be well below 0.45.
    assert len(blob) * 8 / len(bits) < 0.45
    dec = BinaryArithmeticDecoder(blob)
    model2 = AdaptiveBitModel()
    out = []
    for _ in bits:
        b = dec.decode(model2.prob_one)
        model2.update(b)
        out.append(b)
    assert out == bits


def test_extreme_probabilities_clamped():
    out, _ = _roundtrip([0, 1, 0, 1], [0, PROBABILITY_ONE, 0, PROBABILITY_ONE])
    assert out == [0, 1, 0, 1]


def test_model_probability_bounds():
    model = AdaptiveBitModel()
    for _ in range(5000):
        model.update(1)
    assert 0 < model.prob_one < PROBABILITY_ONE
    assert model.prob_one > PROBABILITY_ONE * 0.9


def test_encoder_finish_idempotent():
    enc = BinaryArithmeticEncoder()
    enc.encode(1, 30000)
    assert enc.finish() == enc.finish()


@settings(max_examples=50)
@given(st.lists(st.integers(0, 1), max_size=500))
def test_roundtrip_property(bits):
    out, _ = _roundtrip(bits)
    assert out == bits
