"""Tests for canonical Huffman coding."""

import os
from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.encodings.huffman import (
    build_code_lengths,
    canonical_codes,
    huffman_decode,
    huffman_encode,
)
from repro.errors import CorruptStreamError


def test_empty():
    assert huffman_decode(huffman_encode(b"")) == b""


def test_single_symbol_alphabet():
    data = b"\x42" * 500
    blob = huffman_encode(data)
    assert huffman_decode(blob) == data
    assert len(blob) < 200


def test_skewed_distribution_compresses():
    data = b"a" * 900 + b"b" * 90 + b"c" * 10
    assert len(huffman_encode(data)) < len(data) // 3


def test_lengths_satisfy_kraft():
    freqs = Counter(b"abracadabra" * 50)
    lengths = build_code_lengths(freqs)
    kraft = sum(2.0 ** -length for length in lengths.values())
    assert kraft <= 1.0 + 1e-12


def test_canonical_codes_are_prefix_free():
    freqs = Counter(os.urandom(4096))
    codes = canonical_codes(build_code_lengths(freqs))
    entries = sorted(
        (format(code, f"0{n}b") for code, n in codes.values())
    )
    for a, b in zip(entries, entries[1:]):
        assert not b.startswith(a)


def test_optimality_against_entropy():
    import math

    data = bytes([0] * 800 + [1] * 150 + [2] * 50)
    freqs = Counter(data)
    lengths = build_code_lengths(freqs)
    avg = sum(freqs[s] * lengths[s] for s in freqs) / len(data)
    entropy = -sum(
        (freqs[s] / len(data)) * math.log2(freqs[s] / len(data)) for s in freqs
    )
    assert entropy <= avg < entropy + 1.0


def test_corrupt_table_detected():
    blob = bytearray(huffman_encode(b"hello world"))
    with pytest.raises(CorruptStreamError):
        huffman_decode(bytes(blob[:2]))


def test_dense_alphabet_table_is_compact():
    # Random payloads use all 256 symbols; the nibble table keeps the
    # header near 128 bytes instead of ~500 (important for 4 KB blocks).
    data = os.urandom(4096)
    blob = huffman_encode(data)
    assert len(blob) < len(data) + 160


@given(st.binary(max_size=3000))
def test_roundtrip_property(data):
    assert huffman_decode(huffman_encode(data)) == data
