"""Test package."""
