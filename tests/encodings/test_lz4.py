"""Tests for the LZ4 block format."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.encodings.lz4 import lz4_compress, lz4_decompress
from repro.errors import CorruptStreamError


def test_empty():
    assert lz4_decompress(lz4_compress(b"")) == b""


def test_incompressible_bounded_expansion():
    data = os.urandom(10_000)
    blob = lz4_compress(data)
    assert lz4_decompress(blob) == data
    assert len(blob) < len(data) * 1.05


def test_repetitive_compresses_hard():
    data = b"abcdefgh" * 2000
    assert len(lz4_compress(data)) < len(data) / 50


def test_long_literal_run_extension_bytes():
    # Literal runs above 15 use the 255-saturated extension encoding.
    data = os.urandom(300) + b"Q" * 64
    assert lz4_decompress(lz4_compress(data)) == data


def test_long_match_extension_bytes():
    data = b"a" * 5000
    assert lz4_decompress(lz4_compress(data)) == data


def test_overlapping_copy_semantics():
    data = b"ab" + b"ab" * 100
    assert lz4_decompress(lz4_compress(data)) == data


def test_expected_length_check():
    blob = lz4_compress(b"hello world, hello world")
    with pytest.raises(CorruptStreamError):
        lz4_decompress(blob, expected_length=5)


def test_truncated_block_detected():
    blob = lz4_compress(b"hello world hello world hello world")
    with pytest.raises(CorruptStreamError):
        lz4_decompress(blob[: len(blob) // 2], expected_length=35)


def test_bad_offset_detected():
    # Token with a match at offset 0 is invalid.
    with pytest.raises(CorruptStreamError):
        lz4_decompress(b"\x14AAAA\x00\x00\x00", expected_length=24)


@settings(max_examples=75)
@given(st.binary(max_size=4000))
def test_roundtrip_property(data):
    assert lz4_decompress(lz4_compress(data), expected_length=len(data)) == data
