"""The sans-I/O span model: ids, context, ring buffer, tree, export.

Everything here is pure — no sockets, no processes.  The recorder's
contract is what the serving path leans on: recording never raises,
never blocks unboundedly, never grows without bound, and a disabled
recorder costs one falsy branch.
"""

import pytest

from repro.obs import (
    NULL_SPAN,
    SPAN_ID_BYTES,
    TRACE_ID_BYTES,
    WIRE_CONTEXT_BYTES,
    Span,
    SpanRecorder,
    TraceContext,
    build_trace_tree,
    chrome_trace_events,
    new_span_id,
    new_trace_id,
)


# ----------------------------------------------------------------------
# Ids and the wire context
# ----------------------------------------------------------------------
def test_ids_are_hex_and_fresh():
    tid, sid = new_trace_id(), new_span_id()
    assert len(tid) == TRACE_ID_BYTES * 2
    assert len(sid) == SPAN_ID_BYTES * 2
    bytes.fromhex(tid), bytes.fromhex(sid)  # raises if not hex
    assert new_trace_id() != tid
    assert new_span_id() != sid


def test_context_wire_round_trip():
    ctx = TraceContext.new()
    blob = ctx.to_wire()
    assert len(blob) == WIRE_CONTEXT_BYTES == 24
    assert TraceContext.from_wire(blob) == ctx
    assert TraceContext.from_tuple(ctx.to_tuple()) == ctx
    assert TraceContext.from_tuple(None) is None


def test_context_rejects_wrong_widths():
    with pytest.raises(ValueError):
        TraceContext.from_wire(b"\x00" * 23)
    with pytest.raises(ValueError):
        TraceContext("ab" * 15, "cd" * 8)  # short trace id
    with pytest.raises(ValueError):
        TraceContext("ab" * 16, "cd" * 9)  # long span id


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
def test_span_context_manager_records_on_exit():
    recorder = SpanRecorder(capacity=8)
    with recorder.span("parse") as span:
        span.set_attribute("bytes", 42)
    [record] = recorder.snapshot()
    assert record["name"] == "parse"
    assert record["status"] == "ok"
    assert record["attributes"] == {"bytes": 42}
    assert record["parent_id"] is None
    assert record["duration_ms"] >= 0.0


def test_span_error_status_carries_the_exception():
    recorder = SpanRecorder(capacity=8)
    with pytest.raises(RuntimeError):
        with recorder.span("execute"):
            raise RuntimeError("boom")
    [record] = recorder.snapshot()
    assert record["status"] == "error"
    assert "boom" in record["attributes"]["error"]


def test_attributes_are_json_clean_by_construction():
    recorder = SpanRecorder(capacity=8)
    with recorder.span("op") as span:
        span.set_attribute("codec", "gorilla")
        span.set_attribute("n", 7)
        span.set_attribute("ratio", 0.5)
        span.set_attribute("ok", True)
        span.set_attribute("weird", object())  # coerced to str
        span.set_attribute("absent", None)  # dropped, not null
    attrs = recorder.snapshot()[0]["attributes"]
    assert attrs["codec"] == "gorilla" and attrs["n"] == 7
    assert isinstance(attrs["weird"], str)
    assert "absent" not in attrs


def test_child_inherits_trace_and_parents_on_span_or_context():
    recorder = SpanRecorder(capacity=8)
    root = recorder.span("root")
    local_child = recorder.span("local", parent=root)
    remote_child = recorder.span("remote", parent=root.context)
    assert local_child.trace_id == root.trace_id
    assert remote_child.trace_id == root.trace_id
    assert local_child.parent_id == root.span_id
    assert remote_child.parent_id == root.span_id


def test_to_from_dict_round_trip():
    recorder = SpanRecorder(capacity=8)
    with recorder.span("op") as span:
        span.set_attribute("k", "v")
        span.set_error(ValueError("x"))
    record = recorder.snapshot()[0]
    clone = Span.from_dict(record).to_dict()
    assert clone == record


# ----------------------------------------------------------------------
# NULL_SPAN: the disabled path
# ----------------------------------------------------------------------
def test_disabled_recorder_hands_out_the_null_span():
    recorder = SpanRecorder(capacity=8, enabled=False)
    span = recorder.span("anything")
    assert span is NULL_SPAN
    assert not span  # falsy: call sites can branch cheaply
    with span as inner:  # absorbs the whole Span surface
        inner.set_attribute("k", "v")
        inner.set_error(RuntimeError("ignored"))
    assert span.context is None
    assert recorder.snapshot() == []
    assert recorder.stats()["recorded"] == 0


# ----------------------------------------------------------------------
# The ring buffer
# ----------------------------------------------------------------------
def test_ring_drops_oldest_and_counts_the_loss():
    recorder = SpanRecorder(capacity=3)
    for index in range(5):
        recorder.span(f"s{index}").finish()
    stats = recorder.stats()
    assert stats == {
        "enabled": True,
        "capacity": 3,
        "buffered": 3,
        "recorded": 5,
        "dropped": 2,
    }
    assert [s["name"] for s in recorder.snapshot()] == ["s2", "s3", "s4"]


def test_snapshot_limit_takes_the_most_recent_window():
    recorder = SpanRecorder(capacity=16)
    for index in range(6):
        recorder.span(f"s{index}").finish()
    assert [s["name"] for s in recorder.snapshot(limit=2)] == ["s4", "s5"]


def test_trace_filter_and_trace_ids():
    recorder = SpanRecorder(capacity=16)
    a = recorder.span("a")
    recorder.span("a.child", parent=a).finish()
    a.finish()
    b = recorder.span("b")
    b.finish()
    assert recorder.trace_ids() == [a.trace_id, b.trace_id]
    names = [s["name"] for s in recorder.trace(a.trace_id)]
    assert names == ["a", "a.child"]  # start-ordered, b excluded


def test_record_dicts_ingests_foreign_spans():
    source = SpanRecorder(capacity=8)
    with source.span("worker.execute"):
        pass
    sink = SpanRecorder(capacity=8)
    assert sink.record_dicts(source.snapshot()) == 1
    assert sink.snapshot() == source.snapshot()


def test_clear_and_invalid_capacity():
    recorder = SpanRecorder(capacity=4)
    recorder.span("x").finish()
    recorder.clear()
    assert recorder.snapshot() == []
    with pytest.raises(ValueError):
        SpanRecorder(capacity=0)


# ----------------------------------------------------------------------
# Tree building and Chrome export
# ----------------------------------------------------------------------
def _flat(recorder=None):
    recorder = recorder or SpanRecorder(capacity=16)
    root = recorder.span("root")
    second = recorder.span("second", parent=root)
    second.finish()
    first = recorder.span("first", parent=root)
    first.start = second.start - 1.0  # force start-order != record-order
    first.finish()
    root.finish()
    return recorder.snapshot()


def test_tree_nests_and_orders_children_by_start():
    [tree] = build_trace_tree(_flat())
    assert tree["name"] == "root"
    assert [child["name"] for child in tree["children"]] == [
        "first",
        "second",
    ]


def test_orphan_span_becomes_a_root_not_an_error():
    spans = _flat()
    orphan = dict(spans[0], span_id="ff" * 8, parent_id="ee" * 8)
    roots = build_trace_tree(spans + [orphan])
    assert {root["span_id"] for root in roots} == {
        spans[-1]["span_id"],
        "ff" * 8,
    }


def test_chrome_events_are_complete_phase_with_span_args():
    spans = _flat()
    events = chrome_trace_events(spans)
    assert len(events) == len(spans)
    for event, span in zip(events, spans):
        assert event["ph"] == "X"
        assert event["name"] == span["name"]
        assert event["ts"] == pytest.approx(span["start"] * 1e6)
        assert event["args"]["trace_id"] == span["trace_id"]
