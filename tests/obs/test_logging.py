"""Structured logging: JSON lines, idempotent setup, slow sampling."""

import io
import json
import logging

import pytest

from repro.obs import (
    JsonFormatter,
    SlowRequestSampler,
    configure_logging,
    get_logger,
)


def _fresh_logger(name):
    logger = logging.getLogger(name)
    logger.handlers.clear()
    return logger


def _lines(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


# ----------------------------------------------------------------------
# The formatter
# ----------------------------------------------------------------------
def test_every_line_is_one_json_object_with_the_envelope():
    logger = _fresh_logger("repro.test.fmt")
    stream = io.StringIO()
    configure_logging(stream=stream, logger=logger)
    logger.info(
        "request done",
        extra={"trace_id": "ab" * 16, "tenant": "gold", "request_id": 7},
    )
    [entry] = _lines(stream)
    assert entry["event"] == "request done"
    assert entry["level"] == "info"
    assert entry["logger"] == "repro.test.fmt"
    assert entry["trace_id"] == "ab" * 16
    assert entry["tenant"] == "gold"
    assert entry["request_id"] == 7
    assert isinstance(entry["ts"], float)


def test_non_primitive_extras_are_coerced_to_strings():
    logger = _fresh_logger("repro.test.coerce")
    stream = io.StringIO()
    configure_logging(stream=stream, logger=logger)
    logger.info("odd", extra={"obj": object(), "path": b"bytes"})
    [entry] = _lines(stream)
    assert isinstance(entry["obj"], str)
    assert isinstance(entry["path"], str)


def test_exceptions_render_as_an_error_field_not_a_traceback_blob():
    logger = _fresh_logger("repro.test.exc")
    stream = io.StringIO()
    configure_logging(stream=stream, logger=logger)
    try:
        raise ValueError("boom")
    except ValueError:
        logger.exception("request failed")
    [entry] = _lines(stream)
    assert entry["error"] == "ValueError('boom')"
    assert "\n" not in stream.getvalue().rstrip("\n")  # still one line


def test_formatter_handles_percent_args():
    record = logging.LogRecord(
        "repro.x", logging.INFO, __file__, 1, "served %d", (3,), None
    )
    assert json.loads(JsonFormatter().format(record))["event"] == "served 3"


# ----------------------------------------------------------------------
# configure_logging
# ----------------------------------------------------------------------
def test_reconfiguration_is_idempotent():
    logger = _fresh_logger("repro.test.idem")
    stream = io.StringIO()
    for _ in range(3):
        configure_logging(stream=stream, logger=logger)
    logger.info("once")
    assert len(_lines(stream)) == 1  # not triplicated
    assert len(logger.handlers) == 1
    assert logger.propagate is False


def test_get_logger_defaults_to_the_repro_namespace():
    assert get_logger().name == "repro"
    assert get_logger("repro.service").name == "repro.service"


# ----------------------------------------------------------------------
# SlowRequestSampler
# ----------------------------------------------------------------------
def _sampler(threshold_ms=10.0, sample_every=1):
    logger = _fresh_logger("repro.test.slow")
    stream = io.StringIO()
    configure_logging(stream=stream, logger=logger)
    sampler = SlowRequestSampler(
        logger, threshold_ms=threshold_ms, sample_every=sample_every
    )
    return sampler, stream


def test_fast_requests_are_counted_but_never_logged():
    sampler, stream = _sampler()
    assert sampler.observe("compress", 0.001) is False
    assert stream.getvalue() == ""
    assert sampler.stats() == {
        "threshold_ms": 10.0,
        "sample_every": 1,
        "observed": 1,
        "slow": 0,
        "emitted": 0,
    }


def test_slow_requests_log_with_correlation_fields():
    sampler, stream = _sampler()
    assert sampler.observe(
        "compress", 0.5, trace_id="cd" * 16, tenant="gold", skipme=None
    )
    [entry] = _lines(stream)
    assert entry["event"] == "slow request"
    assert entry["level"] == "warning"
    assert entry["op"] == "compress"
    assert entry["duration_ms"] == pytest.approx(500.0)
    assert entry["threshold_ms"] == 10.0
    assert entry["trace_id"] == "cd" * 16
    assert entry["tenant"] == "gold"
    assert "skipme" not in entry  # None fields dropped


def test_sampling_bounds_volume_under_a_latency_storm():
    sampler, stream = _sampler(sample_every=3)
    written = sum(sampler.observe("op", 1.0) for _ in range(9))
    assert written == 3  # every 3rd slow request
    stats = sampler.stats()
    assert stats["slow"] == 9 and stats["emitted"] == 3
    # the counters ride on each emitted line, so the loss is visible
    assert _lines(stream)[-1]["slow_count"] == 7


def test_invalid_sample_every_is_typed():
    with pytest.raises(ValueError):
        SlowRequestSampler(sample_every=0)
