"""Tests for the text CD diagram."""

import numpy as np

from repro.stats.cd_diagram import render_cd_diagram
from repro.stats.nemenyi import nemenyi_test


def _result():
    return nemenyi_test(
        ["alpha", "beta", "gamma", "delta"],
        np.array([1.2, 1.5, 3.0, 3.9]),
        30,
    )


def test_contains_every_method_and_rank():
    text = render_cd_diagram(_result())
    for name in ("alpha", "beta", "gamma", "delta"):
        assert name in text
    assert "1.20" in text and "3.90" in text


def test_best_method_listed_first():
    lines = render_cd_diagram(_result()).splitlines()
    label_lines = [l for l in lines if "(" in l and "CD" not in l]
    assert label_lines[0].strip().startswith("alpha")


def test_cd_header():
    assert render_cd_diagram(_result()).startswith("CD = ")


def test_clique_bars_present():
    text = render_cd_diagram(_result())
    assert "cliques" in text
    assert "=" in text.split("cliques")[1]
