"""Tests for the text CD diagram."""

import numpy as np

from repro.stats.cd_diagram import render_cd_diagram
from repro.stats.nemenyi import nemenyi_test


def _result():
    return nemenyi_test(
        ["alpha", "beta", "gamma", "delta"],
        np.array([1.2, 1.5, 3.0, 3.9]),
        30,
    )


def test_contains_every_method_and_rank():
    text = render_cd_diagram(_result())
    for name in ("alpha", "beta", "gamma", "delta"):
        assert name in text
    assert "1.20" in text and "3.90" in text


def test_best_method_listed_first():
    lines = render_cd_diagram(_result()).splitlines()
    label_lines = [l for l in lines if "(" in l and "CD" not in l]
    assert label_lines[0].strip().startswith("alpha")


def test_cd_header():
    assert render_cd_diagram(_result()).startswith("CD = ")


def test_clique_bars_present():
    text = render_cd_diagram(_result())
    assert "cliques" in text
    assert "=" in text.split("cliques")[1]


def test_rendering_is_deterministic():
    # The sweep reporter persists this string as an artifact and diffs
    # it across runs, so repeated renders must be byte-identical.
    assert render_cd_diagram(_result()) == render_cd_diagram(_result())


def test_rendering_invariant_to_input_order():
    # The diagram is ordered by rank, not by the caller's method order.
    shuffled = nemenyi_test(
        ["delta", "gamma", "alpha", "beta"],
        np.array([3.9, 3.0, 1.2, 1.5]),
        30,
    )
    assert render_cd_diagram(shuffled) == render_cd_diagram(_result())
