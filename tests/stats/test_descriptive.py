"""Tests for descriptive aggregates."""

import numpy as np
import pytest

from repro.stats.descriptive import (
    arithmetic_mean,
    boxplot_stats,
    harmonic_mean,
)


def test_harmonic_mean_known():
    assert harmonic_mean([1.0, 2.0, 4.0]) == pytest.approx(12 / 7)


def test_harmonic_below_arithmetic():
    values = [1.1, 2.5, 0.9, 1.4]
    assert harmonic_mean(values) < arithmetic_mean(values)


def test_harmonic_requires_positive():
    with pytest.raises(ValueError):
        harmonic_mean([1.0, -2.0])


def test_nan_skipped():
    assert harmonic_mean([2.0, np.nan, 2.0]) == pytest.approx(2.0)
    assert arithmetic_mean([1.0, np.nan, 3.0]) == pytest.approx(2.0)


def test_empty_is_nan():
    assert np.isnan(harmonic_mean([]))
    assert np.isnan(arithmetic_mean([np.nan]))


def test_boxplot_five_numbers():
    stats = boxplot_stats(np.arange(1, 102, dtype=np.float64))
    assert stats.median == 51.0
    assert stats.q1 == 26.0
    assert stats.q3 == 76.0
    assert stats.outliers == ()


def test_boxplot_detects_outliers():
    values = np.concatenate([np.random.default_rng(0).normal(10, 1, 200), [50.0]])
    stats = boxplot_stats(values)
    assert 50.0 in stats.outliers
    assert stats.whisker_high < 50.0


def test_boxplot_empty_rejected():
    with pytest.raises(ValueError):
        boxplot_stats([])
