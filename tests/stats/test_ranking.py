"""Tests for fractional ranking."""

import numpy as np

from repro.stats.ranking import average_ranks, rank_matrix


def test_simple_ordering():
    scores = np.array([[3.0, 1.0, 2.0]])
    np.testing.assert_array_equal(rank_matrix(scores), [[1.0, 3.0, 2.0]])


def test_lower_is_better_mode():
    scores = np.array([[3.0, 1.0, 2.0]])
    np.testing.assert_array_equal(
        rank_matrix(scores, higher_is_better=False), [[3.0, 1.0, 2.0]]
    )


def test_ties_share_mean_rank():
    scores = np.array([[2.0, 2.0, 1.0]])
    np.testing.assert_array_equal(rank_matrix(scores), [[1.5, 1.5, 3.0]])


def test_missing_entries_get_worst_rank():
    scores = np.array([[3.0, np.nan, 1.0]])
    np.testing.assert_array_equal(rank_matrix(scores), [[1.0, 3.0, 2.0]])


def test_multiple_missing_tie_at_worst():
    scores = np.array([[5.0, np.nan, np.nan]])
    np.testing.assert_array_equal(rank_matrix(scores), [[1.0, 2.5, 2.5]])


def test_average_ranks():
    scores = np.array([[2.0, 1.0], [2.0, 1.0], [1.0, 2.0]])
    np.testing.assert_allclose(average_ranks(scores), [4 / 3, 5 / 3])


def test_matches_scipy_rankdata():
    from scipy.stats import rankdata

    rng = np.random.default_rng(0)
    scores = rng.normal(0, 1, (30, 8))
    ours = rank_matrix(scores, higher_is_better=False)
    for row, expected in zip(ours, scores):
        np.testing.assert_allclose(row, rankdata(expected))
