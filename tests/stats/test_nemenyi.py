"""Tests for the Nemenyi critical difference."""

import numpy as np
import pytest

from repro.stats.nemenyi import critical_difference, nemenyi_test


def test_paper_cd_value():
    # k=13, N=33, alpha=0.05 is the paper's configuration (section 5.4).
    assert critical_difference(13, 33) == pytest.approx(3.18, abs=0.02)


def test_demsar_reference_value():
    # Demsar (2006): q_0.05 for k=5 is 2.728 -> CD for N=30.
    cd = critical_difference(5, 30)
    assert cd == pytest.approx(2.728 * np.sqrt(5 * 6 / (6 * 30)), rel=1e-3)


def test_cd_shrinks_with_more_datasets():
    assert critical_difference(10, 100) < critical_difference(10, 20)


def test_invalid_args():
    with pytest.raises(ValueError):
        critical_difference(1, 10)


def test_ordered_and_significance():
    result = nemenyi_test(["a", "b", "c"], np.array([2.9, 1.0, 2.5]), 40)
    assert [m for m, _ in result.ordered()] == ["b", "c", "a"]
    assert result.significantly_different("b", "a")


def test_cliques_are_maximal():
    ranks = np.array([1.0, 1.1, 1.2, 5.0])
    result = nemenyi_test(["a", "b", "c", "d"], ranks, 100)
    # CD(4, 100) ~ 0.47 > 0.2, so {a, b, c} form one maximal clique.
    cliques = result.cliques()
    assert ("a", "b", "c") in cliques
    assert all("d" not in clique for clique in cliques)


def test_cliques_split_when_cd_small():
    ranks = np.array([1.0, 1.2, 1.4, 5.0])
    result = nemenyi_test(["a", "b", "c", "d"], ranks, 200)
    # CD(4, 200) ~ 0.33 < 0.4: a-c differ, leaving two overlapping pairs.
    assert result.cliques() == [("a", "b"), ("b", "c")]


def test_rank_length_mismatch():
    with pytest.raises(ValueError):
        nemenyi_test(["a"], np.array([1.0, 2.0]), 10)


@pytest.mark.parametrize(
    ("k", "q_alpha"),
    [(3, 2.343), (4, 2.569), (5, 2.728)],
)
def test_demsar_q_alpha_table(k, q_alpha):
    # Demsar (2006), Table 5: critical q values at alpha = 0.05.  Pin
    # the CD against the published constants, not our own code path.
    n = 12
    expected = q_alpha * np.sqrt(k * (k + 1) / (6.0 * n))
    assert critical_difference(k, n) == pytest.approx(expected, rel=1e-3)
