"""Tests for the Friedman test (validated against scipy)."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.stats.friedman import friedman_test


def test_matches_scipy_chisquare():
    rng = np.random.default_rng(1)
    scores = rng.normal(0, 1, (25, 6))
    ours = friedman_test(scores)
    ref_chi2, ref_p = scipy_stats.friedmanchisquare(
        *[-scores[:, j] for j in range(6)]
    )
    assert ours.chi_square == pytest.approx(ref_chi2)
    assert ours.chi_square_pvalue == pytest.approx(ref_p)


def test_distinguishable_methods_rejected():
    rng = np.random.default_rng(2)
    scores = rng.normal(0, 0.05, (33, 13)) + np.linspace(0, 2, 13)
    result = friedman_test(scores)
    assert result.rejects_null(0.05)
    assert result.n_datasets == 33
    assert result.n_methods == 13


def test_identical_methods_not_rejected():
    rng = np.random.default_rng(3)
    scores = rng.normal(0, 1.0, (20, 5))
    result = friedman_test(scores)
    assert result.chi_square_pvalue > 0.001  # no systematic differences


def test_average_ranks_ordering():
    scores = np.tile(np.array([3.0, 2.0, 1.0]), (10, 1))
    result = friedman_test(scores)
    assert result.average_ranks[0] < result.average_ranks[2]


def test_too_small_input_rejected():
    with pytest.raises(ValueError):
        friedman_test(np.ones((1, 5)))
