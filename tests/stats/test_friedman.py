"""Tests for the Friedman test (validated against scipy)."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.stats.friedman import friedman_test


def test_matches_scipy_chisquare():
    rng = np.random.default_rng(1)
    scores = rng.normal(0, 1, (25, 6))
    ours = friedman_test(scores)
    ref_chi2, ref_p = scipy_stats.friedmanchisquare(
        *[-scores[:, j] for j in range(6)]
    )
    assert ours.chi_square == pytest.approx(ref_chi2)
    assert ours.chi_square_pvalue == pytest.approx(ref_p)


def test_distinguishable_methods_rejected():
    rng = np.random.default_rng(2)
    scores = rng.normal(0, 0.05, (33, 13)) + np.linspace(0, 2, 13)
    result = friedman_test(scores)
    assert result.rejects_null(0.05)
    assert result.n_datasets == 33
    assert result.n_methods == 13


def test_identical_methods_not_rejected():
    rng = np.random.default_rng(3)
    scores = rng.normal(0, 1.0, (20, 5))
    result = friedman_test(scores)
    assert result.chi_square_pvalue > 0.001  # no systematic differences


def test_average_ranks_ordering():
    scores = np.tile(np.array([3.0, 2.0, 1.0]), (10, 1))
    result = friedman_test(scores)
    assert result.average_ranks[0] < result.average_ranks[2]


def test_too_small_input_rejected():
    with pytest.raises(ValueError):
        friedman_test(np.ones((1, 5)))


# ----------------------------------------------------------------------
# Hand-computed pins (not scipy-derived): the 4x3 matrix below is small
# enough to rank on paper, so these values catch a regression in our own
# arithmetic even if scipy's reference implementation changed.
# ----------------------------------------------------------------------
#
# Scores (higher is better), one row per dataset:
#   [3, 2, 1]  -> ranks (1, 2, 3)
#   [3, 1, 2]  -> ranks (1, 3, 2)
#   [2, 3, 1]  -> ranks (2, 1, 3)
#   [3, 2, 1]  -> ranks (1, 2, 3)
# Average ranks: (1.25, 2.00, 2.75).
# chi2 = 12N/(k(k+1)) * (sum R_j^2 - k(k+1)^2/4)
#      = 12*4/12 * (1.25^2 + 2^2 + 2.75^2 - 12) = 4 * 1.125 = 4.5
# p(chi2=4.5, df=2) = exp(-4.5/2) = exp(-2.25)
# F = (N-1) chi2 / (N(k-1) - chi2) = 3*4.5 / (8-4.5) = 27/7
_HAND_SCORES = np.array(
    [[3.0, 2.0, 1.0], [3.0, 1.0, 2.0], [2.0, 3.0, 1.0], [3.0, 2.0, 1.0]]
)


def test_hand_computed_average_ranks():
    result = friedman_test(_HAND_SCORES, higher_is_better=True)
    assert result.average_ranks == pytest.approx([1.25, 2.0, 2.75])


def test_hand_computed_chi_square():
    result = friedman_test(_HAND_SCORES, higher_is_better=True)
    assert result.chi_square == pytest.approx(4.5, abs=1e-12)
    assert result.chi_square_pvalue == pytest.approx(np.exp(-2.25), rel=1e-12)


def test_hand_computed_iman_davenport():
    result = friedman_test(_HAND_SCORES, higher_is_better=True)
    assert result.iman_davenport_f == pytest.approx(27.0 / 7.0, rel=1e-12)


def test_nan_scores_rank_worst():
    # A method that failed on one dataset (NaN) takes the worst rank
    # there — the paper's "-" cells penalize, they do not vanish.
    scores = np.array([[3.0, 2.0, np.nan], [3.0, 2.0, 1.0]])
    result = friedman_test(scores, higher_is_better=True)
    assert result.average_ranks[2] == pytest.approx(3.0)
