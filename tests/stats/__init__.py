"""Test package."""
