"""Tests for Mann-Whitney U (validated against scipy)."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.stats.mannwhitney import mann_whitney_u


def test_matches_scipy_no_ties():
    rng = np.random.default_rng(4)
    a, b = rng.normal(0, 1, 40), rng.normal(0.6, 1, 35)
    ours = mann_whitney_u(a, b)
    ref = scipy_stats.mannwhitneyu(a, b, alternative="two-sided",
                                   method="asymptotic")
    assert ours.p_value == pytest.approx(ref.pvalue, abs=5e-3)


def test_matches_scipy_with_ties():
    rng = np.random.default_rng(5)
    a = np.round(rng.normal(0, 1, 50), 1)
    b = np.round(rng.normal(0.3, 1, 50), 1)
    ours = mann_whitney_u(a, b)
    ref = scipy_stats.mannwhitneyu(a, b, alternative="two-sided",
                                   method="asymptotic")
    assert ours.p_value == pytest.approx(ref.pvalue, abs=5e-3)


def test_identical_samples_not_significant():
    rng = np.random.default_rng(6)
    a = rng.normal(0, 1, 30)
    result = mann_whitney_u(a, a + rng.normal(0, 1e-6, 30))
    assert not result.rejects_null(0.05)


def test_clearly_shifted_significant():
    rng = np.random.default_rng(7)
    result = mann_whitney_u(rng.normal(0, 1, 50), rng.normal(3, 1, 50))
    assert result.rejects_null(0.01)


def test_nan_entries_dropped():
    a = np.array([1.0, 2.0, np.nan, 3.0])
    b = np.array([1.5, np.nan, 2.5])
    result = mann_whitney_u(a, b)
    assert np.isfinite(result.p_value)


def test_empty_sample_rejected():
    with pytest.raises(ValueError):
        mann_whitney_u(np.array([]), np.array([1.0]))


def test_all_tied_degenerate():
    result = mann_whitney_u(np.ones(10), np.ones(10))
    assert result.p_value == 1.0
