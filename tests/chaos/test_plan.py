"""Fault plans: determinism, JSON round-trip, validation."""

import pytest

from repro.chaos import FAULT_KINDS, FaultPlan, FaultSpec


def test_decisions_are_deterministic_per_connection():
    plan = FaultPlan.default(seed=7)
    for index in range(50):
        first = [spec.kind for spec in plan.decide(index)]
        again = [spec.kind for spec in plan.decide(index)]
        assert first == again


def test_seed_changes_the_decisions():
    a = FaultPlan.default(seed=1)
    b = FaultPlan.default(seed=2)
    decisions_a = [tuple(s.kind for s in a.decide(i)) for i in range(200)]
    decisions_b = [tuple(s.kind for s in b.decide(i)) for i in range(200)]
    assert decisions_a != decisions_b


def test_probability_edges():
    always = FaultPlan((FaultSpec("latency", probability=1.0),))
    never = FaultPlan((FaultSpec("latency", probability=0.0),))
    for index in range(20):
        assert [spec.kind for spec in always.decide(index)] == ["latency"]
        assert never.decide(index) == []


def test_default_plan_rates_roughly_match_probabilities():
    plan = FaultPlan((FaultSpec("disconnect", probability=0.25),), seed=3)
    hits = sum(bool(plan.decide(index)) for index in range(2000))
    assert 0.15 < hits / 2000 < 0.35


def test_json_round_trip():
    plan = FaultPlan.default(seed=9)
    clone = FaultPlan.from_json(plan.to_json())
    assert clone == plan
    assert clone.to_json() == plan.to_json()


def test_from_dict_rejects_garbage():
    with pytest.raises(ValueError):
        FaultPlan.from_json("not json")
    with pytest.raises(ValueError):
        FaultPlan.from_dict({"specs": "nope"})
    with pytest.raises(ValueError):
        FaultPlan.from_dict({"seed": "seven"})
    with pytest.raises(ValueError):
        FaultPlan.from_dict({"unknown": 1})
    with pytest.raises(ValueError):
        FaultSpec.from_dict({"kind": "latency", "bogus": 1})
    with pytest.raises(ValueError):
        FaultSpec.from_dict({"probability": 0.5})


def test_spec_validation():
    assert set(FAULT_KINDS) == {
        "connect_refuse", "latency", "disconnect", "corrupt", "stall"
    }
    with pytest.raises(ValueError):
        FaultSpec("unplug-the-rack")
    with pytest.raises(ValueError):
        FaultSpec("latency", probability=1.5)
    with pytest.raises(ValueError):
        FaultSpec("latency", seconds=-1.0)
    with pytest.raises(ValueError):
        FaultSpec("disconnect", after_bytes=-1)
