"""ChaosProxy against a real compression server.

Every fault must surface as a *typed* failure on the client —
transport errors, protocol errors, or timeouts — never as silently
wrong bytes, and a fault-free proxied round trip must be
byte-identical to a direct one.
"""

import numpy as np
import pytest

from repro.api import compress_array
from repro.chaos import ChaosProxy, FaultPlan, FaultSpec
from repro.errors import ProtocolError
from repro.service import ServiceClient, serve_background


@pytest.fixture(scope="module")
def server():
    handle = serve_background(batch_window=0.0)
    yield handle
    handle.stop()


def _array(n=512):
    return np.cumsum(np.random.default_rng(11).normal(0, 1, n))


def _client(proxy, **kwargs):
    kwargs.setdefault("retry", 0)
    return ServiceClient(proxy.listen_host, proxy.listen_port, **kwargs)


def test_faultless_proxy_is_transparent(server):
    arr = _array()
    with ChaosProxy(server.host, server.port, FaultPlan()) as proxy:
        with _client(proxy) as client:
            served = client.compress_array(arr, "gorilla", chunk_elements=128)
            assert served == compress_array(arr, "gorilla", chunk_elements=128)
            assert np.array_equal(client.decompress_array(served), arr)
        assert proxy.stats()["connections"] == 1
        assert proxy.stats()["injected"] == {}


def test_corruption_is_caught_by_the_frame_crc(server):
    plan = FaultPlan((FaultSpec("corrupt", probability=1.0, after_bytes=20),))
    with ChaosProxy(server.host, server.port, plan) as proxy:
        with _client(proxy) as client:
            with pytest.raises(ProtocolError, match="checksum"):
                client.compress_array(_array(), "gorilla", chunk_elements=128)
        assert proxy.stats()["injected"]["corrupt"] == 1


def test_mid_frame_disconnect_is_a_transport_fault(server):
    plan = FaultPlan((FaultSpec("disconnect", probability=1.0,
                                after_bytes=64),))
    with ChaosProxy(server.host, server.port, plan) as proxy:
        with _client(proxy) as client:
            # retry=0: the transport fault surfaces as the exhausted-
            # attempts ProtocolError, not as corrupted data.
            with pytest.raises(ProtocolError, match="attempt"):
                client.compress_array(_array(), "gorilla", chunk_elements=128)
        assert proxy.stats()["injected"]["disconnect"] == 1


def test_connect_refusal_shows_up_before_any_bytes(server):
    plan = FaultPlan((FaultSpec("connect_refuse", probability=1.0),))
    with ChaosProxy(server.host, server.port, plan) as proxy:
        with _client(proxy) as client:
            with pytest.raises(ProtocolError, match="attempt"):
                client.ping()
        assert proxy.stats()["injected"]["connect_refuse"] >= 1


def test_latency_spike_trips_the_operation_deadline(server):
    plan = FaultPlan((FaultSpec("latency", probability=1.0, seconds=0.5),))
    with ChaosProxy(server.host, server.port, plan) as proxy:
        with _client(proxy, deadline=0.15) as client:
            with pytest.raises(TimeoutError):
                client.ping()
        assert proxy.stats()["injected"]["latency"] == 1


def test_stall_resumes_and_the_round_trip_stays_identical(server):
    arr = _array()
    plan = FaultPlan((FaultSpec("stall", probability=1.0, seconds=0.1,
                                after_bytes=32),))
    with ChaosProxy(server.host, server.port, plan) as proxy:
        with _client(proxy, deadline=10.0) as client:
            served = client.compress_array(arr, "gorilla", chunk_elements=128)
        assert served == compress_array(arr, "gorilla", chunk_elements=128)
        assert proxy.stats()["injected"]["stall"] == 1


def test_retry_through_a_sometimes_faulty_proxy_succeeds(server):
    # Connection 0 is refused, connection 1 is clean (probability comes
    # from the seeded draw, so this script is stable).
    plan = FaultPlan((FaultSpec("connect_refuse", probability=1.0),))
    clean = FaultPlan()
    specs_by_connection = {0: plan, 1: clean}

    class _Scripted(FaultPlan):
        def decide(self, connection_index):
            scripted = specs_by_connection.get(connection_index, clean)
            return [
                spec for spec in scripted.specs
                if spec.probability >= 1.0
            ]

    with ChaosProxy(server.host, server.port, _Scripted()) as proxy:
        with _client(proxy, retry=2) as client:
            assert client.ping() > 0.0


def test_proxy_survives_target_death():
    handle = serve_background(batch_window=0.0)
    with ChaosProxy(handle.host, handle.port, FaultPlan()) as proxy:
        with _client(proxy) as client:
            client.ping()
            handle.stop()
            with pytest.raises((ProtocolError, ConnectionError, OSError)):
                client.ping()
                client.ping()  # pooled conn may eat the first EOF
