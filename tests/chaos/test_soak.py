"""Chaos soaks against real supervised clusters.

The acceptance bar for the resilience layer: under the default mixed
fault plan plus a mid-run SIGKILL of one node, a replicated cluster
stays ≥ 99% available, every failure is typed, and every successful
round trip returns exactly the bytes a local call would produce.

These spawn real node processes and run for seconds, so they carry the
``chaos`` marker (select alone with ``-m chaos``); the quick smoke
below stays in the tier-1 run.
"""

import threading
import time

import pytest

from repro.chaos import FaultPlan, FaultSpec, run_chaos_soak
from repro.errors import ReproError

pytestmark = pytest.mark.chaos


def _assert_clean(report):
    assert report["failures"]["untyped"] == 0, report["untyped_examples"]
    assert report["byte_identity_failures"] == 0
    assert report["ops"] > 0


def test_soak_with_faults_and_node_kill_stays_available():
    report = run_chaos_soak(
        nodes=3,
        replication=2,
        connections=3,
        duration_seconds=5.0,
        elements=1024,
        kill_node="auto",
    )
    _assert_clean(report)
    assert report["killed_node"] == "node-1"
    assert report["availability"] >= 0.99
    assert report["faults"]["proxied_connections"] > 0
    # The kill plus injected faults must actually exercise the
    # resilience machinery, not just coast on a healthy cluster.
    assert report["client"]["failovers"] > 0
    assert report["plan"] == FaultPlan.default(0).to_dict()


def test_soak_report_is_json_ready():
    import json

    report = run_chaos_soak(
        nodes=1,
        replication=1,
        connections=2,
        duration_seconds=1.5,
        elements=512,
        kill_node=None,
        plan=FaultPlan((FaultSpec("latency", probability=0.2,
                                  seconds=0.01),)),
    )
    _assert_clean(report)
    parsed = json.loads(json.dumps(report, sort_keys=True))
    assert parsed["nodes"] == 1
    assert 0.0 <= parsed["availability"] <= 1.0
    for key in ("shed_requests", "deadline_rejected", "deadline_expired"):
        assert parsed["server"][key] >= 0


def test_drain_under_load_keeps_failures_typed_and_metrics_whole():
    """Satellite: graceful drain during a soak.

    While workers hammer a proxied cluster and one node is drained
    mid-run, a side-channel observer polls every node's metrics
    snapshot; each snapshot must be internally consistent (never torn:
    all sections present, counters non-negative), and no worker may see
    an exception outside the typed taxonomy.
    """
    from repro.cluster import ClusterClient

    torn: list[str] = []
    polled = [0]
    stop = threading.Event()
    observer: list[threading.Thread] = []

    def on_cluster(supervisor):
        control = (supervisor.control_host, supervisor.control_port)

        def observe():
            with ClusterClient([control], pool_size=1, deadline=5.0) as peek:
                while not stop.is_set():
                    for node_id, snapshot in peek.stats().items():
                        if "error" in snapshot:
                            continue  # the drained node: unreachable is fine
                        polled[0] += 1
                        problems = _snapshot_problems(snapshot)
                        if problems:
                            torn.append(f"{node_id}: {problems}")
                    time.sleep(0.05)

        thread = threading.Thread(target=observe, daemon=True)
        thread.start()
        observer.append(thread)

    try:
        report = run_chaos_soak(
            nodes=3,
            replication=2,
            connections=3,
            duration_seconds=4.0,
            elements=1024,
            kill_node=None,
            drain_node="auto",
            plan=FaultPlan((FaultSpec("latency", probability=0.2,
                                      seconds=0.02),)),
            on_cluster=on_cluster,
        )
    finally:
        stop.set()
        for thread in observer:
            thread.join(timeout=10.0)
    _assert_clean(report)
    assert report["drained_node"] == "node-2"
    assert report["availability"] >= 0.99
    assert polled[0] > 0  # the observer actually sampled live snapshots
    assert torn == [], torn


def test_soak_with_tenancy_ledger_byte_exact_across_failover():
    """Tentpole acceptance: quota accounting survives node failover.

    The soak runs authenticated (two tenants, workers alternate
    tokens), SIGKILLs a node mid-run, and afterwards audits every
    node's two ledgers against each other: the registry's lifetime
    quota totals must equal the metrics admission totals byte-exactly.
    """
    report = run_chaos_soak(
        nodes=3,
        replication=2,
        connections=3,
        duration_seconds=4.0,
        elements=1024,
        kill_node="auto",
        tenants=True,
    )
    _assert_clean(report)
    assert report["availability"] >= 0.99
    tenancy = report["tenancy"]
    assert tenancy["enabled"]
    assert set(tenancy["tenants"]) == {"soak-gold", "soak-bronze"}
    assert tenancy["byte_exact"], tenancy["mismatches"]
    assert set(tenancy["per_node"]) == {"node-0", "node-1", "node-2"}
    # Both tenants actually pushed traffic through the cluster.
    served = {
        tenant: sum(
            node.get(tenant, {}).get("registry_requests", 0)
            for node in tenancy["per_node"].values()
        )
        for tenant in tenancy["tenants"]
    }
    assert all(count > 0 for count in served.values()), served


def _snapshot_problems(snapshot: dict) -> list[str]:
    problems = []
    resilience = snapshot.get("resilience")
    if not isinstance(resilience, dict):
        problems.append("missing resilience section")
    else:
        for key in ("shed_requests", "deadline_rejected", "deadline_expired"):
            value = resilience.get(key)
            if not isinstance(value, int) or value < 0:
                problems.append(f"bad resilience counter {key}={value!r}")
    ops = snapshot.get("ops")
    if not isinstance(ops, dict):
        problems.append("missing ops section")
    else:
        for op, cell in ops.items():
            if cell.get("requests", 0) < cell.get("failures", 0):
                problems.append(f"{op}: more failures than requests")
    return problems


def test_worker_exceptions_are_all_repro_typed():
    """Every error class the soak classifier distinguishes is typed."""
    from repro.errors import (
        ClusterError,
        DeadlineExceededError,
        ServerOverloadedError,
    )

    for exc_type in (ClusterError, DeadlineExceededError,
                     ServerOverloadedError):
        assert issubclass(exc_type, ReproError)
