"""Registry, header framing, and input validation."""

import numpy as np
import pytest

from repro.compressors import (
    PAPER_TABLE_ORDER,
    compressor_names,
    get_compressor,
    paper_table_order,
)
from repro.compressors.base import MethodInfo
from repro.errors import CorruptStreamError, UnsupportedDtypeError


def test_all_fifteen_methods_registered():
    assert len(compressor_names()) == 15


def test_paper_order_has_fourteen_table_methods():
    order = paper_table_order()
    assert len(order) == 14
    assert "dzip" not in order
    assert order == list(PAPER_TABLE_ORDER)


def test_unknown_method_lists_alternatives():
    with pytest.raises(KeyError, match="unknown compressor"):
        get_compressor("lzma")


def test_integer_input_rejected():
    comp = get_compressor("gorilla")
    with pytest.raises(UnsupportedDtypeError):
        comp.compress(np.arange(10))


def test_double_only_method_rejects_f32():
    comp = get_compressor("pfpc")
    with pytest.raises(UnsupportedDtypeError, match="precision"):
        comp.compress(np.zeros(8, dtype=np.float32))


def test_header_preserves_shape_and_dtype():
    comp = get_compressor("chimp")
    array = np.random.default_rng(0).normal(0, 1, (5, 7, 3)).astype(np.float32)
    out = comp.decompress(comp.compress(array))
    assert out.shape == (5, 7, 3)
    assert out.dtype == np.float32


def test_bad_magic_rejected():
    comp = get_compressor("chimp")
    with pytest.raises(CorruptStreamError, match="magic"):
        comp.decompress(b"\x00\x00\x00\x00")


def test_bad_dtype_code_rejected():
    comp = get_compressor("chimp")
    blob = bytearray(comp.compress(np.ones(4)))
    blob[1] = 9
    with pytest.raises(CorruptStreamError, match="dtype"):
        comp.decompress(bytes(blob))


def test_implausible_rank_rejected():
    comp = get_compressor("chimp")
    blob = bytearray(comp.compress(np.ones(4)))
    blob[2] = 100  # ndim varint
    with pytest.raises(CorruptStreamError, match="rank"):
        comp.decompress(bytes(blob))


def test_method_info_is_table1_complete():
    for name in compressor_names():
        info = get_compressor(name).info
        assert isinstance(info, MethodInfo)
        assert info.platform in ("cpu", "gpu")
        assert info.predictor_family in (
            "lorenzo", "delta", "dictionary", "prediction", "nn",
        )
        assert info.precisions <= {"S", "D"}
        assert 2006 <= info.year <= 2022


def test_noncontiguous_input_accepted():
    comp = get_compressor("chimp")
    base = np.random.default_rng(1).normal(0, 1, (50, 4))
    view = base[::2]
    out = comp.decompress(comp.compress(view))
    np.testing.assert_array_equal(out, view)


def test_every_method_has_cost_model():
    for name in compressor_names():
        comp = get_compressor(name)
        assert comp.cost.platform == comp.info.platform
        assert comp.cost.anchor_compress_gbs > 0
