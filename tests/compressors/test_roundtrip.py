"""Bit-exact round-trip matrix: every method x every canonical array."""

import numpy as np
import pytest

from repro.compressors import compressor_names, get_compressor
from tests.conftest import assert_bit_exact

METHODS = compressor_names()


def _prepare(comp, array):
    """Harness-side dtype policy: reinterpret f32 pairs for D-only methods."""
    if comp.info.supports_dtype(array.dtype):
        return array
    flat = np.ascontiguousarray(array).ravel()
    if flat.size % 2:
        flat = np.concatenate([flat, np.zeros(1, dtype=flat.dtype)])
    return flat.view(np.float64)


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize(
    "case",
    [
        "smooth3d_f32", "smooth3d_f64", "noisy_f64", "noisy_f32",
        "decimals_f64", "repeats_f64", "table_f64", "specials_f64",
        "single_f64", "pair_f32", "empty_f64", "denormals_f32",
    ],
)
def test_roundtrip(method, case, cases):
    array = cases[case]
    comp = get_compressor(method)
    if method == "dzip" and array.size > 1200:
        pytest.skip("dzip is KB/s-slow by design; covered on small arrays")
    work = _prepare(comp, array)
    blob = comp.compress(work)
    assert_bit_exact(work, comp.decompress(blob))


@pytest.mark.parametrize("method", [m for m in METHODS if m != "dzip"])
def test_compress_is_deterministic(method, cases):
    comp = get_compressor(method)
    array = _prepare(comp, cases["decimals_f64"])
    assert comp.compress(array) == comp.compress(array)


@pytest.mark.parametrize("method", METHODS)
def test_stream_is_self_describing(method, cases):
    comp = get_compressor(method)
    array = _prepare(comp, cases["table_f64"])
    blob = comp.compress(array)
    # A fresh instance (no shared state) must decode the stream.
    fresh = get_compressor(method)
    assert_bit_exact(array, fresh.decompress(blob))
