"""Hypothesis property tests: lossless round-trip on adversarial arrays."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.compressors import get_compressor
from tests.conftest import assert_bit_exact

# Any bit pattern is a valid float, including NaN payloads; generate raw
# bits so the search space covers specials and denormals.
_f64_arrays = hnp.arrays(
    dtype=np.uint64,
    shape=st.integers(0, 400),
    elements=st.integers(0, 2**64 - 1),
).map(lambda bits: bits.view(np.float64))

_f32_arrays = hnp.arrays(
    dtype=np.uint32,
    shape=st.integers(0, 400),
    elements=st.integers(0, 2**32 - 1),
).map(lambda bits: bits.view(np.float32))

_FAST_METHODS_F64 = [
    "gorilla", "chimp", "fpzip", "pfpc", "spdp", "buff",
    "bitshuffle-lz4", "bitshuffle-zstd", "ndzip-cpu", "gfc", "mpc",
    "nvcomp-lz4", "nvcomp-bitcomp",
]
_FAST_METHODS_F32 = [
    "chimp", "fpzip", "spdp", "buff", "bitshuffle-lz4",
    "ndzip-cpu", "mpc", "nvcomp-lz4", "nvcomp-bitcomp", "gorilla",
]

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@pytest.mark.parametrize("method", _FAST_METHODS_F64)
@_SETTINGS
@given(array=_f64_arrays)
def test_roundtrip_f64_any_bits(method, array):
    comp = get_compressor(method)
    assert_bit_exact(array, comp.decompress(comp.compress(array)))


@pytest.mark.parametrize("method", _FAST_METHODS_F32)
@_SETTINGS
@given(array=_f32_arrays)
def test_roundtrip_f32_any_bits(method, array):
    comp = get_compressor(method)
    assert_bit_exact(array, comp.decompress(comp.compress(array)))


@_SETTINGS
@given(
    array=hnp.arrays(
        dtype=np.uint64,
        shape=st.tuples(st.integers(1, 12), st.integers(1, 12), st.integers(1, 12)),
        elements=st.integers(0, 2**64 - 1),
    ).map(lambda bits: bits.view(np.float64))
)
def test_dimensional_methods_on_3d(array):
    for method in ("fpzip", "ndzip-cpu"):
        comp = get_compressor(method)
        assert_bit_exact(array, comp.decompress(comp.compress(array)))


@_SETTINGS
@given(
    values=hnp.arrays(
        dtype=np.float64,
        shape=st.integers(1, 300),
        elements=st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, width=64
        ),
    ),
    decimals=st.integers(0, 4),
)
def test_buff_scan_agrees_with_numpy(values, decimals):
    arr = np.round(values, decimals)
    comp = get_compressor("buff")
    blob = comp.compress(arr)
    threshold = float(np.median(arr))
    np.testing.assert_array_equal(
        comp.scan_less_equal(blob, threshold), arr <= threshold
    )
