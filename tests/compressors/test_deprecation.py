"""The legacy one-shot shims emit one DeprecationWarning per process."""

import warnings

import numpy as np
import pytest

from repro.compressors import base, get_compressor


@pytest.fixture
def fresh_warning_state(monkeypatch):
    """Reset the once-per-process latch so this test observes the warning."""
    monkeypatch.setattr(base, "_SHIM_WARNING_EMITTED", False)


def test_compress_shim_warns_once(fresh_warning_state):
    comp = get_compressor("gorilla")
    arr = np.linspace(0.0, 1.0, 64)
    with pytest.warns(DeprecationWarning, match="compress_array"):
        blob = comp.compress(arr)
    # Second call (and the decompress shim) stay silent: the latch is set.
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        comp.compress(arr)
        out = comp.decompress(blob)
    assert np.array_equal(out, arr)


def test_decompress_shim_warns_too(fresh_warning_state):
    comp = get_compressor("chimp")
    arr = np.linspace(0.0, 1.0, 64)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        blob = comp.compress(arr)
    base._SHIM_WARNING_EMITTED = False
    with pytest.warns(DeprecationWarning, match="deprecated"):
        comp.decompress(blob)


def test_warning_points_at_the_caller(fresh_warning_state):
    """stacklevel must attribute the warning to user code, not the shim."""
    comp = get_compressor("gorilla")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", DeprecationWarning)
        comp.compress(np.linspace(0.0, 1.0, 16))
    shim_warnings = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(shim_warnings) == 1
    assert shim_warnings[0].filename == __file__
