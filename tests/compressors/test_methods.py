"""Method-specific behaviour: the traits the paper attributes to each."""

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.compressors.buff import PRECISION_BITS, BuffCompressor
from repro.compressors.gfc import GFC_MAX_INPUT_BYTES
from repro.errors import InputTooLargeError, PrecisionError
from tests.conftest import assert_bit_exact


class TestGorilla:
    def test_constant_run_costs_one_bit_per_value(self):
        arr = np.full(5000, 12.5)
        blob = get_compressor("gorilla").compress(arr)
        assert len(blob) < 5000 / 8 + 64

    def test_random_data_slightly_expands(self):
        rng = np.random.default_rng(0)
        arr = rng.normal(0, 1, 4000)
        cr = arr.nbytes / len(get_compressor("gorilla").compress(arr))
        assert 0.90 < cr < 1.05  # paper: 0.97-0.99 on pattern-free data


class TestChimp:
    def test_beats_gorilla_on_decimal_data(self):
        rng = np.random.default_rng(1)
        arr = np.round(rng.normal(50, 10, 6000), 2)
        chimp = len(get_compressor("chimp").compress(arr))
        gorilla = len(get_compressor("gorilla").compress(arr))
        assert chimp < gorilla

    def test_window_reference_hits(self):
        # Values recurring within 128 positions compress via the window.
        base = np.random.default_rng(2).normal(0, 1, 64)
        arr = np.tile(base, 40)
        cr = arr.nbytes / len(get_compressor("chimp").compress(arr))
        assert cr > 4.0


class TestFpzip:
    def test_dimensionality_improves_ratio(self, cases):
        arr = cases["smooth3d_f32"]
        comp = get_compressor("fpzip")
        cr_3d = arr.nbytes / len(comp.compress(arr))
        cr_1d = arr.nbytes / len(comp.compress(arr.ravel()))
        assert cr_3d > cr_1d

    def test_smooth_field_compresses_well(self, cases):
        arr = cases["smooth3d_f32"]
        cr = arr.nbytes / len(get_compressor("fpzip").compress(arr))
        assert cr > 1.8


class TestPfpc:
    def test_thread_count_changes_chunking_not_content(self):
        rng = np.random.default_rng(3)
        arr = np.cumsum(rng.normal(0, 0.01, 4000))
        one = get_compressor("pfpc", threads=1)
        eight = get_compressor("pfpc", threads=8)
        assert_bit_exact(arr, one.decompress(one.compress(arr)))
        assert_bit_exact(arr, eight.decompress(eight.compress(arr)))

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            get_compressor("pfpc", threads=0)
        with pytest.raises(ValueError):
            get_compressor("pfpc", table_bits=2)


class TestBuff:
    def test_explicit_precision(self):
        arr = np.round(np.random.default_rng(4).normal(5, 1, 2000), 1)
        comp = BuffCompressor(precision=1)
        assert_bit_exact(arr, comp.decompress(comp.compress(arr)))

    def test_invalid_precision_rejected(self):
        with pytest.raises(PrecisionError):
            BuffCompressor(precision=11)

    def test_precision_bits_match_table2(self):
        assert PRECISION_BITS[1] == 5
        assert PRECISION_BITS[5] == 18
        assert PRECISION_BITS[10] == 35

    def test_full_precision_data_expands(self):
        rng = np.random.default_rng(5)
        arr = rng.normal(0, 1, 3000)
        cr = arr.nbytes / len(BuffCompressor().compress(arr))
        assert cr < 1.0  # everything is an outlier

    def test_scan_matches_numpy_reference(self):
        rng = np.random.default_rng(6)
        arr = np.round(rng.normal(100, 15, 5000), 2)
        comp = BuffCompressor()
        blob = comp.compress(arr)
        for threshold in (70.0, 100.0, 130.0):
            np.testing.assert_array_equal(
                comp.scan_less_equal(blob, threshold), arr <= threshold
            )
        value = arr[42]
        np.testing.assert_array_equal(comp.scan_equal(blob, value), arr == value)

    def test_scan_handles_outliers(self):
        rng = np.random.default_rng(7)
        arr = np.round(rng.normal(10, 2, 1000), 2)
        arr[::50] = rng.normal(0, 1, 20)  # full-precision outliers
        comp = BuffCompressor()
        blob = comp.compress(arr)
        np.testing.assert_array_equal(
            comp.scan_less_equal(blob, 10.0), arr <= 10.0
        )


class TestGfc:
    def test_input_size_limit(self):
        comp = get_compressor("gfc")
        assert comp.max_input_bytes == GFC_MAX_INPUT_BYTES == 512 * 1024 * 1024

    def test_oversized_input_rejected(self, monkeypatch):
        comp = get_compressor("gfc")
        monkeypatch.setattr(type(comp), "max_input_bytes", 1024)
        with pytest.raises(InputTooLargeError):
            comp.compress(np.zeros(1000))

    def test_subchunk_base_prediction(self):
        # Constant data is GFC's best case: every residual is zero, so
        # only the 4-bit code plus one zero byte remain per value.
        arr = np.full(1280, 7.25)
        cr = arr.nbytes / len(get_compressor("gfc").compress(arr))
        assert cr > 4.0

    def test_leading_zero_bytes_only(self):
        # GFC trims leading zero *bytes* but keeps trailing zeros, so an
        # exponent-only step compresses barely at all (the inaccurate-
        # predictor trait behind its last-place ranking).
        arr = np.repeat(np.arange(40, dtype=np.float64), 32)
        cr = arr.nbytes / len(get_compressor("gfc").compress(arr))
        assert 1.0 < cr < 1.5

    def test_device_trace_records_transfers(self):
        comp = get_compressor("gfc")
        arr = np.random.default_rng(8).normal(0, 1, 1024)
        comp.compress(arr)
        assert comp.device.trace.h2d_bytes == arr.nbytes
        assert comp.device.trace.launch_count >= 1


class TestMpc:
    def test_smooth_doubles_compress(self):
        arr = np.cumsum(np.random.default_rng(9).normal(0, 1e-6, 8192)) + 10.0
        cr = arr.nbytes / len(get_compressor("mpc").compress(arr))
        assert cr > 1.3

    def test_chunk_padding_boundary(self):
        for n in (1023, 1024, 1025, 2047):
            arr = np.random.default_rng(n).normal(0, 1, n)
            comp = get_compressor("mpc")
            assert_bit_exact(arr, comp.decompress(comp.compress(arr)))


class TestNdzip:
    def test_cpu_gpu_streams_identical(self, cases):
        arr = cases["smooth3d_f32"]
        cpu = get_compressor("ndzip-cpu").compress(arr)
        gpu = get_compressor("ndzip-gpu").compress(arr)
        assert cpu == gpu  # same algorithm, different execution schedule

    def test_partial_border_blocks(self):
        # 17x17x17 leaves partial blocks on every axis.
        rng = np.random.default_rng(10)
        arr = np.cumsum(rng.normal(0, 0.01, 17**3)).reshape(17, 17, 17)
        comp = get_compressor("ndzip-cpu")
        assert_bit_exact(arr, comp.decompress(comp.compress(arr)))

    def test_rank_4_flattened_to_3(self):
        arr = np.random.default_rng(11).normal(0, 1, (3, 4, 5, 6))
        comp = get_compressor("ndzip-cpu")
        out = comp.decompress(comp.compress(arr))
        assert out.shape == arr.shape


class TestNvcomp:
    def test_bitcomp_constant_chunks_tiny(self):
        arr = np.full(8192, 1.0)
        cr = arr.nbytes / len(get_compressor("nvcomp-bitcomp").compress(arr))
        assert cr > 20.0

    def test_bitcomp_noisy_near_one(self):
        arr = np.random.default_rng(12).normal(0, 1, 8192)
        cr = arr.nbytes / len(get_compressor("nvcomp-bitcomp").compress(arr))
        assert 0.9 < cr < 1.1

    def test_lz4_chunking_parameter(self):
        comp = get_compressor("nvcomp-lz4", chunk_bytes=4096)
        arr = np.random.default_rng(13).normal(0, 1, 4000)
        assert_bit_exact(arr, comp.decompress(comp.compress(arr)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            get_compressor("nvcomp-lz4", chunk_bytes=10)
        with pytest.raises(ValueError):
            get_compressor("nvcomp-bitcomp", chunk_values=3)


class TestSpdp:
    def test_window_tradeoff_parameters(self):
        rng = np.random.default_rng(14)
        arr = np.round(rng.normal(10, 1, 4000), 2)
        small = get_compressor("spdp", window=1 << 10)
        large = get_compressor("spdp", window=1 << 18)
        assert_bit_exact(arr, small.decompress(small.compress(arr)))
        blob_small = small.compress(arr)
        blob_large = large.compress(arr)
        assert len(blob_large) <= len(blob_small) + 32

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            get_compressor("spdp", window=16)


class TestDzip:
    def test_compresses_structured_bytes(self):
        arr = np.round(np.random.default_rng(15).normal(5, 1, 600), 1)
        comp = get_compressor("dzip")
        blob = comp.compress(arr)
        assert_bit_exact(arr, comp.decompress(blob))
        assert len(blob) < arr.nbytes

    def test_two_model_mixing_is_symmetric(self):
        # Encode/decode must drive identical model state; any divergence
        # would corrupt the stream immediately.
        rng = np.random.default_rng(16)
        arr = np.repeat(rng.normal(0, 1, 25), 20)
        comp = get_compressor("dzip")
        assert_bit_exact(arr, comp.decompress(comp.compress(arr)))
