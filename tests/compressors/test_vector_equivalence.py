"""Vectorized codec paths vs. the retained scalar (seed) oracles.

Every rewritten hot path must produce *byte-identical* payloads to the
original per-element implementation, and the vectorized decoders must
invert both.  Cases cover adversarial floats (NaN payloads, signed
zeros, infinities, denormals) and structural extremes (constant runs,
alternating repeats, pure noise, quantized decimals).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.compressors.mpc import MpcCompressor
from repro.compressors.ndzip import NdzipCpuCompressor

from .conftest_vector import adversarial_cases  # noqa: F401  (fixture file)


def _uint_view(array: np.ndarray) -> np.ndarray:
    return array.view(
        np.uint32 if array.dtype == np.float32 else np.uint64
    )


def _bitexact(a: np.ndarray, b: np.ndarray) -> bool:
    return (
        a.shape == b.shape
        and a.dtype == b.dtype
        and np.array_equal(_uint_view(a.ravel()), _uint_view(b.ravel()))
    )


ORACLE_METHODS = ["gorilla", "chimp", "fpzip", "ndzip-cpu"]


@pytest.mark.parametrize("method", ORACLE_METHODS)
class TestByteIdentity:
    def test_payloads_byte_identical(self, method, adversarial_cases):
        compressor = get_compressor(method)
        for name, array in adversarial_cases.items():
            array = np.ascontiguousarray(array)
            expected = compressor._compress_scalar(array)
            actual = compressor._compress(array)
            assert actual == expected, (
                f"{method} diverges from the seed payload on {name!r}"
            )

    def test_vector_decoder_inverts_scalar_payload(
        self, method, adversarial_cases
    ):
        compressor = get_compressor(method)
        for name, array in adversarial_cases.items():
            array = np.ascontiguousarray(array)
            payload = compressor._compress_scalar(array)
            restored = compressor._decompress(
                payload, array.shape, array.dtype
            )
            assert _bitexact(
                np.asarray(restored).reshape(array.shape), array
            ), f"{method} failed to decode the seed payload of {name!r}"


@pytest.mark.parametrize("method", ["gorilla", "chimp", "fpzip"])
def test_scalar_decoder_inverts_vector_payload(method, adversarial_cases):
    compressor = get_compressor(method)
    for name, array in adversarial_cases.items():
        array = np.ascontiguousarray(array)
        payload = compressor._compress(array)
        restored = compressor._decompress_scalar(
            payload, array.shape, array.dtype
        )
        assert _bitexact(np.asarray(restored).reshape(array.shape), array), (
            f"{method} vector payload not decodable by the seed on {name!r}"
        )


class TestNdzipBatching:
    @pytest.mark.parametrize(
        "shape",
        [
            (4096 * 3 + 17,),  # full 1-D blocks plus a border
            (130, 70),  # 2-D: full and partial hypercubes
            (17, 17, 17),  # 3-D border-heavy grid
            (4096,),  # exactly one block (scalar path)
        ],
    )
    def test_batched_blocks_match_scalar_blocks(self, shape):
        rng = np.random.default_rng(5)
        array = np.cumsum(rng.normal(0, 1, shape), axis=-1)
        compressor = NdzipCpuCompressor()
        assert compressor._compress(array) == compressor._compress_scalar(
            array
        )
        restored = compressor.decompress(compressor.compress(array))
        assert _bitexact(restored, array)


class TestMpcLaneReconstruction:
    def test_vectorized_lag6_matches_naive_loop(self):
        rng = np.random.default_rng(11)
        array = rng.normal(0, 1, 5000)
        compressor = MpcCompressor()
        payload = compressor.compress(array)
        restored = compressor.decompress(payload)
        assert _bitexact(restored, array)

    def test_lag6_prefix_identity(self):
        # The strided cumsums must equal the scalar recurrence exactly,
        # including uint64 wraparound.
        rng = np.random.default_rng(12)
        stage1 = rng.integers(0, 2**64, (3, 1024), dtype=np.uint64)
        naive = stage1.copy()
        for lane in range(6, 1024):
            naive[:, lane] = stage1[:, lane] + naive[:, lane - 6]
        fast = stage1.copy()
        for residue in range(6):
            lanes = fast[:, residue::6]
            np.cumsum(lanes, axis=1, dtype=np.uint64, out=lanes)
        assert np.array_equal(naive, fast)
