"""Test package."""
