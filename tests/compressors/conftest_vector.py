"""Adversarial float arrays for the vector/scalar equivalence tests."""

from __future__ import annotations

import numpy as np
import pytest


def build_adversarial_cases() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(20260727)
    nan_payloads = np.array(
        [np.nan, -np.nan] * 40, dtype=np.float64
    ).view(np.uint64)
    # Distinct NaN payload bit patterns exercise full-width XOR windows.
    nan_payloads[1::2] |= np.uint64(0xDEADBEEF)
    return {
        "empty": np.array([], dtype=np.float64),
        "single": np.array([2.718281828459045]),
        "pair": np.array([1.0, 1.0]),
        "constant_run": np.full(777, -12.5),
        "alternating": np.tile(np.array([1.5, -1.5]), 300),
        "specials": np.array(
            [0.0, -0.0, np.inf, -np.inf, np.nan, 5e-324, -5e-324,
             1.7976931348623157e308, -1.7976931348623157e308, 1e-308] * 13
        ),
        "nan_payloads": nan_payloads.view(np.float64),
        "denormals_f64": rng.normal(0, 1, 600) * 1e-310,
        "denormals_f32": (
            rng.normal(0, 1, 600).astype(np.float32) * np.float32(1e-42)
        ),
        "noise_f64": rng.normal(0, 1, 4000),
        "noise_f32": rng.normal(0, 1, 4000).astype(np.float32),
        "smooth_walk": np.cumsum(rng.normal(0, 1e-6, 4000)) + 100.0,
        "decimals": np.round(rng.normal(50, 10, 4000), 2),
        "quantized_f32": np.round(
            rng.normal(0, 5, 4000), 1
        ).astype(np.float32),
        "repeats": np.repeat(rng.normal(0, 1, 60), 70),
        "matrix": np.round(rng.normal(10, 3, (90, 11)), 3),
        "zero_blocks": np.concatenate(
            [np.zeros(500), rng.normal(0, 1, 500), np.zeros(500)]
        ),
    }


@pytest.fixture(scope="module")
def adversarial_cases() -> dict[str, np.ndarray]:
    return build_adversarial_cases()
