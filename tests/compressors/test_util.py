"""Tests for the shared bit utilities."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.compressors.util import (
    bit_transpose,
    bit_untranspose,
    bits_to_float,
    float_bits,
    leading_zeros,
    sign_magnitude_map,
    sign_magnitude_unmap,
    significant_bits,
    trailing_zeros,
)
from repro.errors import UnsupportedDtypeError


def test_float_bits_view_is_lossless():
    arr = np.array([1.5, -2.25, np.nan], dtype=np.float32)
    np.testing.assert_array_equal(bits_to_float(float_bits(arr)), arr.view(np.float32))


def test_float_bits_rejects_ints():
    with pytest.raises(UnsupportedDtypeError):
        float_bits(np.arange(4))


def test_sign_magnitude_is_monotone():
    values = np.array([-np.inf, -1e10, -1.0, -1e-300, -0.0, 0.0, 1e-300, 1.0, np.inf])
    mapped = sign_magnitude_map(float_bits(values))
    assert (np.diff(mapped.astype(np.float64)) >= 0).all()


def test_sign_magnitude_roundtrip_f32():
    rng = np.random.default_rng(0)
    bits = rng.integers(0, 2**32, 1000, dtype=np.uint32)
    np.testing.assert_array_equal(
        sign_magnitude_unmap(sign_magnitude_map(bits)), bits
    )


def test_sign_magnitude_roundtrip_f64():
    rng = np.random.default_rng(0)
    bits = rng.integers(0, 2**64, 1000, dtype=np.uint64)
    np.testing.assert_array_equal(
        sign_magnitude_unmap(sign_magnitude_map(bits)), bits
    )


@pytest.mark.parametrize("dtype", [np.uint32, np.uint64])
def test_significant_bits_matches_python(dtype):
    rng = np.random.default_rng(3)
    width = np.dtype(dtype).itemsize * 8
    values = rng.integers(0, 2**width, 500, dtype=dtype)
    expected = [int(v).bit_length() for v in values]
    np.testing.assert_array_equal(significant_bits(values), expected)


def test_significant_bits_zero():
    assert significant_bits(np.zeros(3, dtype=np.uint64)).tolist() == [0, 0, 0]


def test_leading_trailing_zeros():
    v = np.array([0b1000, 0, 1 << 63], dtype=np.uint64)
    assert leading_zeros(v).tolist() == [60, 64, 0]
    assert trailing_zeros(v).tolist() == [3, 64, 63]


@given(
    hnp.arrays(
        dtype=np.uint64,
        shape=st.integers(1, 64),
        elements=st.integers(0, 2**64 - 1),
    )
)
def test_bit_transpose_roundtrip(words):
    packed = bit_transpose(words)
    np.testing.assert_array_equal(
        bit_untranspose(packed, len(words), np.uint64), words
    )


def test_bit_transpose_plane_layout():
    # All MSBs land in the first output bits.
    words = np.full(8, 1 << 63, dtype=np.uint64)
    packed = bit_transpose(words)
    assert packed[0] == 0xFF
    assert packed[1:].sum() == 0
