"""Tests for the disk model."""

import pytest

from repro.storage.iosim import DEFAULT_DISK, DiskModel


def test_read_time_components():
    disk = DiskModel(bandwidth_gbs=1.0, seek_latency_s=0.001,
                     per_chunk_overhead_s=0.0001)
    t = disk.read_seconds(10**9, n_chunks=10)
    assert t == pytest.approx(0.001 + 0.001 + 1.0)


def test_zero_bytes_is_latency_only():
    assert DEFAULT_DISK.read_seconds(0) == pytest.approx(
        DEFAULT_DISK.seek_latency_s + DEFAULT_DISK.per_chunk_overhead_s
    )


def test_negative_rejected():
    with pytest.raises(ValueError):
        DEFAULT_DISK.read_seconds(-1)


def test_calibration_matches_table11_scale():
    # ~117 MB compressed reads in ~70-85 ms on the paper's node.
    t = DEFAULT_DISK.read_seconds(117_000_000)
    assert 0.05 < t < 0.1


# -- write model (service bench: persisting compressed responses) ------
def test_write_time_components():
    disk = DiskModel(write_bandwidth_gbs=1.0, seek_latency_s=0.001,
                     per_chunk_overhead_s=0.0001)
    t = disk.write_seconds(10**9, n_chunks=10)
    assert t == pytest.approx(0.001 + 0.001 + 1.0)


def test_write_negative_bytes_rejected():
    with pytest.raises(ValueError):
        DEFAULT_DISK.write_seconds(-1)


def test_write_negative_chunks_rejected():
    with pytest.raises(ValueError):
        DEFAULT_DISK.write_seconds(100, n_chunks=-1)


def test_write_zero_chunks_is_seek_plus_bandwidth():
    # n_chunks=0 models a pure stream append: no per-chunk overhead.
    disk = DiskModel()
    t = disk.write_seconds(10**6, n_chunks=0)
    assert t == pytest.approx(
        disk.seek_latency_s + 10**6 / (disk.write_bandwidth_gbs * 1e9)
    )


def test_writes_slower_than_reads_at_default_calibration():
    assert (DEFAULT_DISK.write_seconds(10**8, n_chunks=0)
            > DEFAULT_DISK.read_seconds(10**8, n_chunks=0))
