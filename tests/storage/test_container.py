"""Tests for the chunked container file format."""

import numpy as np
import pytest

from repro.data import load
from repro.errors import StorageError
from repro.storage.container import ContainerReader, ContainerWriter


@pytest.fixture
def sample(tmp_path):
    arr = load("gas-price", 4096).copy()
    w = ContainerWriter(chunk_elements=1024)
    w.add_dataset("gas", arr, filter_name="bitshuffle-lz4")
    w.add_dataset("raw", arr, filter_name="none")
    path = tmp_path / "sample.fcbc"
    w.save(path)
    return path, arr


def test_roundtrip_filtered(sample):
    path, arr = sample
    r = ContainerReader(path)
    np.testing.assert_array_equal(
        r.read_dataset("gas").view(np.uint64), arr.view(np.uint64)
    )


def test_roundtrip_raw(sample):
    path, arr = sample
    np.testing.assert_array_equal(ContainerReader(path).read_dataset("raw"), arr)


def test_info_and_compression_ratio(sample):
    path, arr = sample
    info = ContainerReader(path).info("gas")
    assert info.raw_bytes == arr.nbytes
    assert info.compression_ratio > 1.0
    assert info.filter_name == "bitshuffle-lz4"
    assert len(info.chunks) == -(-arr.size // 1024)


def test_bytes_read_accounting(sample):
    path, _ = sample
    r = ContainerReader(path)
    assert r.bytes_read == 0
    r.read_dataset("gas")
    assert r.bytes_read == r.info("gas").compressed_bytes


def test_duplicate_dataset_rejected():
    w = ContainerWriter()
    w.add_dataset("x", np.ones(4))
    with pytest.raises(StorageError, match="already added"):
        w.add_dataset("x", np.ones(4))


def test_integer_data_rejected():
    with pytest.raises(StorageError):
        ContainerWriter().add_dataset("x", np.arange(4))


def test_unknown_dataset(sample):
    path, _ = sample
    with pytest.raises(StorageError, match="no dataset"):
        ContainerReader(path).info("nope")


def test_not_a_container(tmp_path):
    path = tmp_path / "junk.bin"
    path.write_bytes(b"not a container file")
    with pytest.raises(StorageError):
        ContainerReader(path)


def test_truncated_file_detected(sample, tmp_path):
    path, _ = sample
    data = path.read_bytes()
    short = tmp_path / "short.fcbc"
    short.write_bytes(data[: len(data) - 10])
    with pytest.raises(StorageError, match="trailer"):
        ContainerReader(short)


def test_f32_dataset_with_double_only_filter(tmp_path):
    arr = load("rsim", 2048).copy()
    w = ContainerWriter(chunk_elements=512)
    w.add_dataset("rsim", arr, filter_name="pfpc")
    path = tmp_path / "f32.fcbc"
    w.save(path)
    out = ContainerReader(path).read_dataset("rsim")
    np.testing.assert_array_equal(out.view(np.uint32), arr.view(np.uint32))


def test_empty_dataset(tmp_path):
    w = ContainerWriter()
    w.add_dataset("empty", np.array([], dtype=np.float64), "chimp")
    path = tmp_path / "empty.fcbc"
    w.save(path)
    assert ContainerReader(path).read_dataset("empty").size == 0


def test_multidim_shape_preserved(tmp_path):
    arr = np.random.default_rng(0).normal(0, 1, (13, 5, 7))
    w = ContainerWriter(chunk_elements=64)
    w.add_dataset("cube", arr, "gorilla")
    path = tmp_path / "cube.fcbc"
    w.save(path)
    out = ContainerReader(path).read_dataset("cube")
    assert out.shape == (13, 5, 7)
    np.testing.assert_array_equal(out, arr)
