"""Tests for the minimal column dataframe."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.dataframe import DataFrame


def test_from_table_2d():
    table = np.arange(12, dtype=np.float64).reshape(4, 3)
    df = DataFrame.from_table(table)
    assert df.column_names == ["c0", "c1", "c2"]
    assert len(df) == 4
    np.testing.assert_array_equal(df.column("c1"), [1, 4, 7, 10])


def test_from_table_1d():
    df = DataFrame.from_table(np.ones(5))
    assert df.column_names == ["c0"]


def test_ragged_columns_rejected():
    with pytest.raises(StorageError, match="ragged"):
        DataFrame({"a": np.ones(3), "b": np.ones(4)})


def test_empty_columns_rejected():
    with pytest.raises(StorageError):
        DataFrame({})


def test_scan_less_equal():
    df = DataFrame({"a": np.array([1.0, 5.0, 3.0])})
    np.testing.assert_array_equal(
        df.scan_less_equal("a", 3.0), [True, False, True]
    )


def test_select():
    df = DataFrame({"a": np.arange(6, dtype=np.float64)})
    out = df.select(df.scan_less_equal("a", 2.0))
    assert len(out) == 3


def test_select_length_mismatch():
    df = DataFrame({"a": np.ones(3)})
    with pytest.raises(StorageError, match="mask length"):
        df.select(np.ones(5, dtype=bool))


def test_unknown_column():
    df = DataFrame({"a": np.ones(3)})
    with pytest.raises(StorageError, match="no column"):
        df.column("z")


def test_histogram_edges():
    rng = np.random.default_rng(0)
    df = DataFrame({"a": rng.normal(0, 1, 1000)})
    edges = df.histogram_edges("a", bins=10)
    assert len(edges) == 11
    assert (np.diff(edges) > 0).all()


def test_histogram_ignores_nonfinite():
    df = DataFrame({"a": np.array([1.0, np.nan, np.inf, 2.0])})
    edges = df.histogram_edges("a", bins=2)
    assert np.isfinite(edges).all()
