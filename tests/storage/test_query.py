"""Tests for the query micro-benchmark engine (Table 11)."""

import pytest

from repro.compressors import get_compressor
from repro.data import get_spec, load
from repro.storage.query import QueryBenchmark


@pytest.fixture(scope="module")
def bench():
    return QueryBenchmark()


def test_cost_components_positive(bench):
    spec = get_spec("tpcH-order")
    cost = bench.run(
        get_compressor("chimp"), spec.name, load(spec.name, 4096),
        spec.paper_bytes, spec.paper_extent[0],
    )
    assert cost.read_ms > 0
    assert cost.decode_ms > 0
    assert cost.query_ms > 0
    assert cost.total_ms == pytest.approx(
        cost.read_ms + cost.decode_ms + cost.query_ms
    )


def test_read_time_scales_with_compressed_size(bench):
    # Better CR -> fewer bytes read -> shorter read time.
    spec = get_spec("tpcH-order")
    arr = load(spec.name, 4096)
    chimp = bench.run(get_compressor("chimp"), spec.name, arr,
                      spec.paper_bytes, spec.paper_extent[0])
    gorilla = bench.run(get_compressor("gorilla"), spec.name, arr,
                        spec.paper_bytes, spec.paper_extent[0])
    assert chimp.read_ms < gorilla.read_ms


def test_query_time_is_method_independent(bench):
    # The decoded frames are identical, so scans cost the same.
    spec = get_spec("tpcDS-web")
    arr = load(spec.name, 4096)
    a = bench.run(get_compressor("chimp"), spec.name, arr,
                  spec.paper_bytes, spec.paper_extent[0])
    b = bench.run(get_compressor("mpc"), spec.name, arr,
                  spec.paper_bytes, spec.paper_extent[0])
    assert a.query_ms == pytest.approx(b.query_ms)


def test_serial_decoders_dominate_total(bench):
    # Observation 9: fpzip's slow decode dwarfs its read time.
    spec = get_spec("tpcH-order")
    arr = load(spec.name, 4096)
    fpzip = bench.run(get_compressor("fpzip"), spec.name, arr,
                      spec.paper_bytes, spec.paper_extent[0])
    assert fpzip.decode_ms > 10 * fpzip.read_ms
