"""Tests for the query micro-benchmark engine (Table 11)."""

import numpy as np
import pytest

from repro.api.session import DecompressSession, compress_array
from repro.compressors import get_compressor
from repro.data import get_spec, load
from repro.storage.query import QueryBenchmark


@pytest.fixture(scope="module")
def bench():
    return QueryBenchmark()


def test_cost_components_positive(bench):
    spec = get_spec("tpcH-order")
    cost = bench.run(
        get_compressor("chimp"), spec.name, load(spec.name, 4096),
        spec.paper_bytes, spec.paper_extent[0],
    )
    assert cost.read_ms > 0
    assert cost.decode_ms > 0
    assert cost.query_ms > 0
    assert cost.total_ms == pytest.approx(
        cost.read_ms + cost.decode_ms + cost.query_ms
    )


def test_read_time_scales_with_compressed_size(bench):
    # Better CR -> fewer bytes read -> shorter read time.
    spec = get_spec("tpcH-order")
    arr = load(spec.name, 4096)
    chimp = bench.run(get_compressor("chimp"), spec.name, arr,
                      spec.paper_bytes, spec.paper_extent[0])
    gorilla = bench.run(get_compressor("gorilla"), spec.name, arr,
                        spec.paper_bytes, spec.paper_extent[0])
    assert chimp.read_ms < gorilla.read_ms


def test_query_time_is_method_independent(bench):
    # The decoded frames are identical, so scans cost the same.
    spec = get_spec("tpcDS-web")
    arr = load(spec.name, 4096)
    a = bench.run(get_compressor("chimp"), spec.name, arr,
                  spec.paper_bytes, spec.paper_extent[0])
    b = bench.run(get_compressor("mpc"), spec.name, arr,
                  spec.paper_bytes, spec.paper_extent[0])
    assert a.query_ms == pytest.approx(b.query_ms)


def test_serial_decoders_dominate_total(bench):
    # Observation 9: fpzip's slow decode dwarfs its read time.
    spec = get_spec("tpcH-order")
    arr = load(spec.name, 4096)
    fpzip = bench.run(get_compressor("fpzip"), spec.name, arr,
                      spec.paper_bytes, spec.paper_extent[0])
    assert fpzip.decode_ms > 10 * fpzip.read_ms


# -- range reads through the stream index (run_range edge cases) -------
@pytest.fixture(scope="module")
def range_stream():
    # 5 full chunks of 100 elements plus a final partial chunk of 37.
    arr = np.cumsum(np.ones(537)) * 0.5
    blob = compress_array(arr, "gorilla", chunk_elements=100)
    with DecompressSession(blob) as session:
        yield arr, session


def test_range_empty(bench, range_stream):
    arr, session = range_stream
    scan = bench.run_range(session, 200, 200)
    assert scan.values.size == 0
    assert scan.n_chunks == 0
    assert scan.bytes_read == 0
    assert scan.read_ms == 0.0


def test_range_reversed_bounds(bench, range_stream):
    arr, session = range_stream
    scan = bench.run_range(session, 400, 100)
    assert scan.values.size == 0
    assert scan.n_chunks == 0
    assert scan.read_ms == 0.0


def test_range_spanning_final_partial_chunk(bench, range_stream):
    arr, session = range_stream
    scan = bench.run_range(session, 480, 537)
    assert np.array_equal(scan.values, arr[480:537])
    assert scan.n_chunks == 2  # last full chunk + the 37-element tail
    assert scan.bytes_read > 0
    assert scan.read_ms > 0


def test_range_clamps_past_the_end(bench, range_stream):
    arr, session = range_stream
    scan = bench.run_range(session, 530, 10_000)
    assert np.array_equal(scan.values, arr[530:])
    assert scan.n_chunks == 1  # only the final partial chunk


def test_range_read_cost_counts_only_touched_chunks(bench, range_stream):
    arr, session = range_stream
    one = bench.run_range(session, 0, 50)
    many = bench.run_range(session, 0, 537)
    assert one.n_chunks == 1 and many.n_chunks == 6
    assert one.bytes_read < many.bytes_read
    assert one.read_ms < many.read_ms
