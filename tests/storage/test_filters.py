"""Tests for the filter adapters."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.filters import available_filters, decode_chunk, encode_chunk


def test_identity_filter():
    arr = np.arange(8, dtype=np.float64)
    blob = encode_chunk("none", arr)
    np.testing.assert_array_equal(decode_chunk("none", blob, 8, arr.dtype), arr)


def test_every_registered_compressor_is_a_filter():
    filters = available_filters()
    assert "none" in filters
    assert "bitshuffle-zstd" in filters
    assert len(filters) == 16  # identity + 15 methods


def test_unknown_filter():
    with pytest.raises(StorageError):
        encode_chunk("gzip", np.ones(4))


def test_f32_reinterpret_roundtrip():
    arr = np.random.default_rng(0).normal(0, 1, 101).astype(np.float32)
    blob = encode_chunk("gfc", arr)  # double-only: odd f32 count
    out = decode_chunk("gfc", blob, 101, np.dtype(np.float32))
    np.testing.assert_array_equal(out.view(np.uint32), arr.view(np.uint32))


def test_element_count_validated():
    blob = encode_chunk("none", np.ones(4))
    with pytest.raises(StorageError):
        decode_chunk("none", blob, 5, np.dtype(np.float64))
