"""Test package."""
