"""Tests for paged (block) compression."""

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.data import load
from repro.storage.pagestore import PAGE_SIZES, paged_compress, paged_decompress


def test_page_sizes_match_table10():
    assert PAGE_SIZES == {"4K": 4096, "64K": 65536, "8M": 8 * 1024 * 1024}


def test_roundtrip_all_page_sizes():
    comp = get_compressor("chimp")
    arr = load("gas-price", 4096).copy().ravel()
    for page_bytes in PAGE_SIZES.values():
        result = paged_compress(comp, arr, page_bytes)
        out = paged_decompress(comp, result, arr.dtype)
        np.testing.assert_array_equal(out.view(np.uint64), arr.view(np.uint64))


def test_page_accounting():
    comp = get_compressor("gorilla")
    arr = np.ones(4096)
    result = paged_compress(comp, arr, 4096)
    assert result.n_pages == arr.nbytes // 4096
    assert result.raw_bytes == arr.nbytes
    assert result.compressed_bytes == sum(len(b) for b in result.page_blobs)


def test_larger_pages_help_ratio():
    # Table 10's takeaway: compressors prefer larger blocks.
    comp = get_compressor("chimp")
    arr = load("gas-price", 8192).copy().ravel()
    small = paged_compress(comp, arr, 2048)
    large = paged_compress(comp, arr, 64 * 1024)
    assert large.compression_ratio >= small.compression_ratio


def test_tiny_page_rejected():
    with pytest.raises(ValueError):
        paged_compress(get_compressor("chimp"), np.ones(10), 4)


def test_empty_array():
    comp = get_compressor("chimp")
    result = paged_compress(comp, np.array([], dtype=np.float64), 4096)
    assert result.n_pages == 0
    assert paged_decompress(comp, result, np.float64).size == 0
