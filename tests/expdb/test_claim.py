"""Claim semantics: atomic acquisition, heartbeats, stale reaping."""

import threading

import pytest

from repro.expdb.claim import (
    Heartbeat,
    beat,
    claim_next,
    make_owner_id,
    release_stale,
)
from repro.expdb.store import CellKey, ExperimentStore


@pytest.fixture()
def db(tmp_path):
    return tmp_path / "exp.sqlite"


def _fill(store: ExperimentStore, n: int) -> None:
    rows = []
    for i in range(n):
        rows.append(
            {
                **CellKey(
                    codec="gorilla",
                    dataset="citytemp",
                    chunk_elements=1024,
                    jobs=1,
                    policy="fixed",
                    seed=i,
                    target_elements=2048,
                ).as_dict(),
                "domain": "TS",
            }
        )
    store.insert_cells(rows)


def test_owner_ids_are_unique():
    assert make_owner_id() != make_owner_id()


def test_claim_transitions_and_audits(db):
    with ExperimentStore(db) as store:
        _fill(store, 1)
        cell = claim_next(store, "w1", now=100.0)
        assert cell.status == "claimed"
        assert cell.owner == "w1"
        assert cell.attempts == 1
        assert cell.claimed_at == 100.0
        assert cell.heartbeat == 100.0
        assert [e.kind for e in store.events(cell.id)] == ["claimed"]


def test_claim_exhausts_in_order(db):
    with ExperimentStore(db) as store:
        _fill(store, 3)
        ids = [claim_next(store, "w").id for _ in range(3)]
        assert ids == sorted(ids)
        assert claim_next(store, "w") is None


def test_concurrent_claimers_never_share_a_cell(db):
    n_cells, n_workers = 12, 4
    with ExperimentStore(db) as store:
        _fill(store, n_cells)
    claimed: dict[str, list[int]] = {}
    barrier = threading.Barrier(n_workers)

    def worker(name: str) -> None:
        mine = claimed.setdefault(name, [])
        with ExperimentStore(db) as store:
            barrier.wait()
            while True:
                cell = claim_next(store, name)
                if cell is None:
                    return
                mine.append(cell.id)

    threads = [
        threading.Thread(target=worker, args=(f"w{i}",))
        for i in range(n_workers)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    all_ids = [cid for ids in claimed.values() for cid in ids]
    assert len(all_ids) == n_cells
    assert len(set(all_ids)) == n_cells  # no cell claimed twice

    # The database's own audit agrees: every cell has exactly one
    # claimed event, attributed to the worker holding the claim.
    with ExperimentStore(db) as store:
        for cell in store.cells():
            events = [
                e for e in store.events(cell.id) if e.kind == "claimed"
            ]
            assert len(events) == 1
            assert cell.id in claimed[events[0].worker]
            assert cell.owner == events[0].worker
            assert cell.attempts == 1


def test_beat_refreshes_only_own_live_claim(db):
    with ExperimentStore(db) as store:
        _fill(store, 1)
        cell = claim_next(store, "w1", now=100.0)
        assert beat(store, cell.id, "w1", now=105.0)
        assert store.cell_by_id(cell.id).heartbeat == 105.0
        assert not beat(store, cell.id, "intruder", now=106.0)
        assert store.cell_by_id(cell.id).heartbeat == 105.0


def test_release_stale_reverts_only_silent_claims(db):
    with ExperimentStore(db) as store:
        _fill(store, 2)
        dead = claim_next(store, "dead", now=100.0)
        live = claim_next(store, "live", now=100.0)
        beat(store, live.id, "live", now=150.0)
        released = release_stale(store, timeout=10.0, now=160.0)
        assert released == [dead.id]
        assert store.cell_by_id(dead.id).status == "pending"
        assert store.cell_by_id(dead.id).owner is None
        assert store.cell_by_id(live.id).status == "claimed"
        expired = store.events(dead.id, kind="claim-expired")
        assert expired[0].payload == {"previous_owner": "dead"}


def test_release_stale_is_idempotent(db):
    with ExperimentStore(db) as store:
        _fill(store, 1)
        cell = claim_next(store, "w", now=100.0)
        assert release_stale(store, timeout=10.0, now=200.0) == [cell.id]
        assert release_stale(store, timeout=10.0, now=200.0) == []


def test_reclaimed_cell_rejects_late_write(db):
    # The "never doubled" invariant: a worker whose claim expired and
    # was re-claimed cannot overwrite the re-run's result.
    with ExperimentStore(db) as store:
        _fill(store, 1)
        first = claim_next(store, "stalled", now=100.0)
        release_stale(store, timeout=10.0, now=200.0)
        second = claim_next(store, "fresh", now=200.0)
        assert second.id == first.id
        assert second.attempts == 2
        assert not store.write_result(first.id, "stalled", "done", {"ratio": 9.9})
        assert store.write_result(second.id, "fresh", "done", {"ratio": 1.5})
        assert store.cell_by_id(first.id).ratio == 1.5


def test_heartbeat_thread_keeps_claim_alive(db):
    with ExperimentStore(db) as store:
        _fill(store, 1)
        cell = claim_next(store, "w")
        before = store.cell_by_id(cell.id).heartbeat
    with Heartbeat(db, cell.id, "w", interval=0.05):
        import time

        time.sleep(0.3)
    with ExperimentStore(db) as store:
        assert store.cell_by_id(cell.id).heartbeat > before


def test_heartbeat_flags_lost_claim(db):
    with ExperimentStore(db) as store:
        _fill(store, 1)
        cell = claim_next(store, "w", now=100.0)
        release_stale(store, timeout=1.0, now=200.0)
        claim_next(store, "usurper", now=200.0)
    import time

    with Heartbeat(db, cell.id, "w", interval=0.05) as hb:
        deadline = time.time() + 5.0
        while not hb.lost and time.time() < deadline:
            time.sleep(0.02)
    assert hb.lost
