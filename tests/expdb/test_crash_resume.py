"""Crash-resume integration: SIGKILLed workers lose nothing.

These tests spawn *real* worker processes (the same ``fcbench sweep
worker`` verb ``sweep run --workers N`` uses) and kill one of them with
SIGKILL — no atexit handler, no cleanup — while it demonstrably holds a
claim.  The sweep must then resume to 100% with every cell executed
exactly once: the dead worker's claim expires via the heartbeat timeout
and any later worker re-claims the cell.
"""

import os
import signal
import subprocess
import time

import pytest

from repro.expdb.claim import release_stale
from repro.expdb.store import ExperimentStore
from repro.expdb.sweep import (
    DELAY_ENV,
    GridSpec,
    init_grid,
    run_sweep,
    worker_command,
    worker_env,
    worker_loop,
)

pytestmark = pytest.mark.expdb

GRID = GridSpec(
    codecs=("gorilla", "chimp"),
    datasets=("citytemp", "msg-bt"),
    chunk_elements=(512,),
    target_elements=1024,
)


@pytest.fixture()
def db(tmp_path):
    path = tmp_path / "exp.sqlite"
    with ExperimentStore(path) as store:
        init_grid(store, GRID)
    return path


def _spawn_worker(db, delay_s: float, owner: str, interval=0.05):
    env = worker_env()
    env[DELAY_ENV] = str(delay_s)
    cmd = worker_command(db, heartbeat_interval=interval, heartbeat_timeout=60.0)
    cmd += ["--owner", owner]
    return subprocess.Popen(
        cmd,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _wait_for_claim(db, owner: str, timeout: float = 30.0):
    """Block until ``owner`` holds a claim; returns the claimed cell."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        with ExperimentStore(db) as store:
            claimed = [
                c for c in store.cells(status="claimed") if c.owner == owner
            ]
        if claimed:
            return claimed[0]
        time.sleep(0.05)
    raise AssertionError(f"worker {owner} never claimed a cell")


def test_sigkilled_worker_claim_expires_and_cell_is_rerun(db):
    victim = _spawn_worker(db, delay_s=120.0, owner="victim")
    try:
        cell = _wait_for_claim(db, "victim")
        # SIGKILL while the claim is held: no Python-level cleanup runs.
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=10.0)
    finally:
        if victim.poll() is None:
            victim.kill()

    with ExperimentStore(db) as store:
        # The claim survives the process: still 'claimed' until reaped.
        assert store.cell_by_id(cell.id).status == "claimed"
        # Heartbeats stopped with the process, so the claim goes stale.
        released = release_stale(store, timeout=0.5, now=time.time() + 10.0)
        assert cell.id in released
        assert store.cell_by_id(cell.id).status == "pending"

    # Resume in-process: the whole grid completes, including the cell
    # the dead worker was holding.
    summary = worker_loop(db, owner="survivor")
    assert summary["executed"] == 4
    with ExperimentStore(db) as store:
        counts = store.counts()
        assert counts["done"] == 4
        assert counts["pending"] == 0
        assert counts["claimed"] == 0
        rerun = store.cell_by_id(cell.id)
        assert rerun.status == "done"
        assert rerun.owner == "survivor"
        assert rerun.attempts == 2  # victim's claim plus the re-run
        # Exactly one result was recorded despite two claims.
        assert len(store.events(cell.id, kind="done")) == 1
        expired = store.events(cell.id, kind="claim-expired")
        assert expired[0].payload == {"previous_owner": "victim"}


def test_run_sweep_recovers_after_mid_run_kill(db):
    # Stage one worker that will stall forever on its first cell, then
    # kill it and drive the sweep to completion with run_sweep — the
    # production resume path (reap stale claims, then drain).
    victim = _spawn_worker(db, delay_s=120.0, owner="victim")
    try:
        _wait_for_claim(db, "victim")
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=10.0)
    finally:
        if victim.poll() is None:
            victim.kill()

    time.sleep(1.0)  # let the victim's last heartbeat age past timeout
    summary = run_sweep(db, workers=1, heartbeat_timeout=0.5)
    assert summary["counts"]["done"] == 4
    assert summary["counts"]["pending"] == 0
    assert summary["counts"]["claimed"] == 0


def test_two_workers_split_the_grid_without_overlap(db):
    # Two live subprocess workers drain the grid concurrently; the
    # owner audit proves no cell was executed by both.
    workers = [
        _spawn_worker(db, delay_s=0.1, owner=f"w{i}") for i in range(2)
    ]
    for proc in workers:
        out, _ = proc.communicate(timeout=120.0)
        assert proc.returncode == 0, out

    with ExperimentStore(db) as store:
        counts = store.counts()
        assert counts["done"] == 4
        owners = set()
        for cell in store.cells():
            assert cell.attempts == 1
            done_events = store.events(cell.id, kind="done")
            assert len(done_events) == 1
            assert done_events[0].worker == cell.owner
            owners.add(cell.owner)
        # With a 0.1 s per-cell stall, both workers get claims.
        assert owners <= {"w0", "w1"}
