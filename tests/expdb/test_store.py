"""Tests for the sqlite experiment store (schema, inserts, guards)."""

import sqlite3

import pytest

from repro.errors import ExperimentError
from repro.expdb.store import (
    RESULT_FIELDS,
    SCHEMA_VERSION,
    STATUSES,
    CellKey,
    ExperimentStore,
)


@pytest.fixture()
def store(tmp_path):
    with ExperimentStore(tmp_path / "exp.sqlite") as s:
        yield s


def _key(**overrides) -> CellKey:
    base = dict(
        codec="gorilla",
        dataset="citytemp",
        chunk_elements=1024,
        jobs=1,
        policy="fixed",
        seed=0,
        target_elements=2048,
    )
    base.update(overrides)
    return CellKey(**base)


def _row(**overrides) -> dict:
    row = _key().as_dict()
    row["domain"] = "TS"
    row.update(overrides)
    return row


def test_schema_version_recorded(store):
    assert store.get_meta("schema_version") == str(SCHEMA_VERSION)


def test_schema_version_mismatch_refused(tmp_path):
    path = tmp_path / "exp.sqlite"
    with ExperimentStore(path) as s:
        s.conn.execute(
            "UPDATE meta SET value = '999' WHERE key = 'schema_version'"
        )
    with pytest.raises(ExperimentError, match="schema version"):
        ExperimentStore(path)


def test_wal_mode_enabled(store):
    mode = store.conn.execute("PRAGMA journal_mode").fetchone()[0]
    assert mode == "wal"


def test_insert_is_idempotent(store):
    assert store.insert_cells([_row()]) == 1
    assert store.insert_cells([_row()]) == 0
    assert store.counts()["total"] == 1


def test_insert_distinguishes_every_keyfield(store):
    rows = [_row()]
    for field, value in [
        ("codec", "chimp"),
        ("dataset", "msg-bt"),
        ("chunk_elements", 0),
        ("jobs", 2),
        ("policy", "measured"),
        ("seed", 7),
        ("target_elements", 512),
    ]:
        rows.append(_row(**{field: value}))
    assert store.insert_cells(rows) == len(rows)


def test_insert_rejects_bad_status(store):
    with pytest.raises(ExperimentError, match="status"):
        store.insert_cells([_row(status="wedged")])


def test_find_cell_round_trips_keyfields(store):
    store.insert_cells([_row()])
    cell = store.find_cell(_key())
    assert cell is not None
    assert cell.key == _key()
    assert cell.status == "pending"
    assert cell.domain == "TS"
    assert store.find_cell(_key(seed=99)) is None


def test_counts_cover_every_status(store):
    assert store.counts() == {**{s: 0 for s in STATUSES}, "total": 0}
    store.insert_cells([_row(), _row(codec="chimp", status="skipped")])
    counts = store.counts()
    assert counts["pending"] == 1
    assert counts["skipped"] == 1
    assert counts["total"] == 2


def test_write_result_requires_matching_owner(store):
    from repro.expdb.claim import claim_next

    store.insert_cells([_row()])
    cell = claim_next(store, "worker-a")
    assert not store.write_result(cell.id, "worker-b", "done", {"ratio": 2.0})
    assert store.cell_by_id(cell.id).status == "claimed"
    assert store.write_result(cell.id, "worker-a", "done", {"ratio": 2.0})
    row = store.cell_by_id(cell.id)
    assert row.status == "done"
    assert row.ratio == 2.0
    assert row.finished_at is not None


def test_write_result_requires_claimed_status(store):
    store.insert_cells([_row()])
    cell = store.find_cell(_key())
    # Never claimed: a write against a pending cell is rejected.
    assert not store.write_result(cell.id, "worker-a", "done", {"ratio": 2.0})


def test_write_result_rejects_non_terminal_status(store):
    from repro.expdb.claim import claim_next

    store.insert_cells([_row()])
    cell = claim_next(store, "w")
    with pytest.raises(ExperimentError, match="terminal"):
        store.write_result(cell.id, "w", "pending")


def test_write_result_rejects_unknown_resultfield(store):
    from repro.expdb.claim import claim_next

    store.insert_cells([_row()])
    cell = claim_next(store, "w")
    with pytest.raises(ExperimentError, match="resultfield"):
        store.write_result(cell.id, "w", "done", {"vibes": 11.0})


def test_resultfields_round_trip(store):
    from repro.expdb.claim import claim_next

    store.insert_cells([_row()])
    cell = claim_next(store, "w")
    fields = {
        "ratio": 1.5,
        "encode_mbs": 100.0,
        "decode_mbs": 200.0,
        "input_bytes": 8192,
        "compressed_bytes": 5461,
    }
    assert set(fields) == set(RESULT_FIELDS)
    store.write_result(cell.id, "w", "done", fields)
    assert store.cell_by_id(cell.id).resultfields() == fields


def test_reset_cells_requeues_failures(store):
    from repro.expdb.claim import claim_next

    store.insert_cells([_row()])
    cell = claim_next(store, "w")
    store.write_result(cell.id, "w", "failed", error="boom")
    assert store.reset_cells(("failed",)) == 1
    row = store.cell_by_id(cell.id)
    assert row.status == "pending"
    assert row.error == ""


def test_events_logtable(store):
    store.insert_cells([_row()])
    cell = store.find_cell(_key())
    store.log_event(cell.id, "w", "chunk", {"index": 0, "compressed_bytes": 9})
    store.log_event(cell.id, "w", "done")
    events = store.events(cell_id=cell.id)
    assert [e.kind for e in events] == ["chunk", "done"]
    assert events[0].payload == {"index": 0, "compressed_bytes": 9}
    assert store.events(kind="done")[0].cell_id == cell.id


def test_meta_json_round_trip(store):
    store.set_meta("grid", {"codecs": ["gorilla"], "seeds": [0, 1]})
    assert store.get_meta("grid") == {"codecs": ["gorilla"], "seeds": [0, 1]}
    assert store.get_meta("missing", "fallback") == "fallback"


def test_status_check_constraint_enforced_by_sqlite(store):
    store.insert_cells([_row()])
    with pytest.raises(sqlite3.IntegrityError):
        store.conn.execute("UPDATE cells SET status = 'bogus'")


def test_two_connections_share_one_database(tmp_path):
    path = tmp_path / "exp.sqlite"
    with ExperimentStore(path) as a, ExperimentStore(path) as b:
        a.insert_cells([_row()])
        assert b.counts()["total"] == 1
