"""Grid expansion, cell execution, and the in-process worker loop."""

import hashlib
import json

import numpy as np
import pytest

from repro.data.catalog import ExternalCorpus
from repro.errors import ExperimentError
from repro.expdb.store import CellKey, ExperimentStore
from repro.expdb.sweep import (
    GridSpec,
    execute_cell,
    expand_grid,
    init_grid,
    validate_grid,
    worker_loop,
)

SMALL = GridSpec(
    codecs=("gorilla", "chimp"),
    datasets=("citytemp", "msg-bt"),
    chunk_elements=(512,),
    target_elements=1024,
)


@pytest.fixture()
def db(tmp_path):
    return tmp_path / "exp.sqlite"


# ----------------------------------------------------------------------
# Grid expansion / init
# ----------------------------------------------------------------------
def test_expand_grid_is_full_cross_product():
    keys = expand_grid(SMALL)
    assert len(keys) == 4
    assert len(set(keys)) == 4
    assert {k.codec for k in keys} == {"gorilla", "chimp"}


def test_expand_grid_fans_auto_per_policy():
    grid = GridSpec(
        codecs=("gorilla", "auto"),
        datasets=("citytemp",),
        chunk_elements=(512,),
        policies=("heuristic", "measured"),
    )
    keys = expand_grid(grid)
    labels = sorted(k.method_label for k in keys)
    assert labels == ["auto/heuristic", "auto/measured", "gorilla"]
    # Fixed codecs never multiply across policies.
    assert [k.policy for k in keys if k.codec == "gorilla"] == ["fixed"]


def test_validate_grid_rejects_unknowns():
    with pytest.raises(ExperimentError, match="unknown codec"):
        validate_grid(GridSpec(codecs=("middle-out",)))
    with pytest.raises(ExperimentError, match="unknown dataset"):
        validate_grid(GridSpec(datasets=("atlantis",)))
    with pytest.raises(ExperimentError, match="auto"):
        validate_grid(GridSpec(codecs=("auto",), chunk_elements=(0,)))


def test_init_grid_is_idempotent(db):
    with ExperimentStore(db) as store:
        first = init_grid(store, SMALL)
        second = init_grid(store, SMALL)
        assert first.added == 4
        assert second.added == 0
        assert store.counts()["pending"] == 4
        assert store.get_meta("grid")["codecs"] == ["gorilla", "chimp"]


def test_init_grid_widening_adds_only_new_cells(db):
    import dataclasses

    with ExperimentStore(db) as store:
        init_grid(store, SMALL)
        wider = dataclasses.replace(
            SMALL, codecs=("gorilla", "chimp", "spdp")
        )
        summary = init_grid(store, wider)
        assert summary.added == 2  # one new codec x two datasets
        assert store.counts()["total"] == 6


def test_init_grid_never_resets_finished_work(db):
    from repro.expdb.claim import claim_next

    with ExperimentStore(db) as store:
        init_grid(store, SMALL)
        cell = claim_next(store, "w")
        store.write_result(cell.id, "w", "done", {"ratio": 2.0})
        init_grid(store, SMALL)
        assert store.cell_by_id(cell.id).status == "done"


# ----------------------------------------------------------------------
# Cell execution
# ----------------------------------------------------------------------
def _key(**overrides) -> CellKey:
    base = dict(
        codec="gorilla",
        dataset="citytemp",
        chunk_elements=512,
        jobs=1,
        policy="fixed",
        seed=0,
        target_elements=1024,
    )
    base.update(overrides)
    return CellKey(**base)


def test_execute_stream_cell_done():
    status, fields, error, events = execute_cell(_key())
    assert status == "done", error
    assert fields["ratio"] > 0
    assert fields["input_bytes"] == 1024 * 4  # citytemp is float32
    assert fields["compressed_bytes"] > 0
    assert fields["encode_mbs"] > 0
    assert fields["decode_mbs"] > 0
    kinds = [e["kind"] for e in events]
    assert kinds[0] == "encoded"
    assert kinds.count("chunk") == 2  # 1024 elements / 512 per chunk


def test_execute_stream_cell_deterministic_sizes():
    a = execute_cell(_key())[1]
    b = execute_cell(_key())[1]
    assert a["compressed_bytes"] == b["compressed_bytes"]
    assert a["ratio"] == b["ratio"]


def test_execute_legacy_cell_matches_runner():
    from repro.core.runner import BenchmarkRunner
    from repro.data.catalog import get_spec
    from repro.data.loader import load

    key = _key(chunk_elements=0)
    status, fields, error, _ = execute_cell(key)
    assert status == "done", error
    reference = BenchmarkRunner().run_cell(
        "gorilla", load("citytemp", 1024, 0), get_spec("citytemp")
    )
    assert fields["ratio"] == reference.compression_ratio
    assert fields["input_bytes"] == reference.input_bytes
    assert fields["compressed_bytes"] == reference.compressed_bytes


def test_execute_auto_cell_selects_per_chunk():
    status, fields, _, events = execute_cell(
        _key(codec="auto", policy="heuristic")
    )
    assert status == "done"
    encoded = events[0]["payload"]
    assert sum(encoded["codec_frames"].values()) == encoded["chunks"]


def test_execute_cell_honest_failure_for_paper_limit_skip():
    # GFC rejects paper-scale inputs over its 512 MB limit (the paper's
    # "-" cell on astro-mhd); the legacy protocol records that as a
    # failed cell with the typed error, never an exception.
    status, fields, error, _ = execute_cell(
        _key(codec="gfc", dataset="astro-mhd", chunk_elements=0)
    )
    assert status == "failed"
    assert fields == {}
    assert "limit" in error


def test_execute_cell_auto_requires_chunks():
    status, _, error, _ = execute_cell(_key(codec="auto", chunk_elements=0))
    assert status == "failed"
    assert "auto" in error


def test_execute_cell_unknown_dataset_fails():
    status, _, error, _ = execute_cell(_key(dataset="atlantis"))
    assert status == "failed"
    assert error


# ----------------------------------------------------------------------
# Worker loop
# ----------------------------------------------------------------------
def test_worker_loop_drains_grid(db):
    with ExperimentStore(db) as store:
        init_grid(store, SMALL)
    summary = worker_loop(db)
    assert summary["executed"] == 4
    assert summary["done"] == 4
    assert summary["lost_claims"] == 0
    with ExperimentStore(db) as store:
        counts = store.counts()
        assert counts["done"] == 4
        assert counts["pending"] == 0
        # Exactly-once audit: one "done" event per cell, one attempt.
        for cell in store.cells():
            assert cell.attempts == 1
            assert len(store.events(cell.id, kind="done")) == 1


def test_worker_loop_respects_max_cells(db):
    with ExperimentStore(db) as store:
        init_grid(store, SMALL)
    summary = worker_loop(db, max_cells=1)
    assert summary["executed"] == 1
    with ExperimentStore(db) as store:
        assert store.counts()["pending"] == 3


def test_worker_loop_resumes_after_interruption(db):
    with ExperimentStore(db) as store:
        init_grid(store, SMALL)
    worker_loop(db, max_cells=2)
    summary = worker_loop(db)
    assert summary["executed"] == 2
    with ExperimentStore(db) as store:
        assert store.counts()["done"] == 4


# ----------------------------------------------------------------------
# External corpus integration
# ----------------------------------------------------------------------
@pytest.fixture()
def corpus(tmp_path):
    arr = np.sin(np.linspace(0.0, 20.0, 2000)).astype(np.float64)
    blob = arr.tobytes()
    (tmp_path / "buoy.bin").write_bytes(blob)
    manifest = tmp_path / "manifest.json"
    manifest.write_text(
        json.dumps(
            {
                "version": 1,
                "datasets": [
                    {
                        "name": "buoy",
                        "domain": "OBS",
                        "dtype": "f64",
                        "url": "https://example.org/buoy.bin",
                        "sha256": hashlib.sha256(blob).hexdigest(),
                    },
                    {
                        "name": "glacier",
                        "domain": "HPC",
                        "dtype": "f64",
                        "url": "https://example.org/glacier.bin",
                        "sha256": "0" * 64,
                    },
                ],
            }
        )
    )
    return manifest


def test_init_grid_marks_offline_corpus_cells_skipped(db, corpus):
    grid = GridSpec(
        codecs=("gorilla",),
        datasets=("citytemp", "buoy", "glacier"),
        chunk_elements=(512,),
        target_elements=1024,
    )
    ext = ExternalCorpus.from_manifest(corpus)
    with ExperimentStore(db) as store:
        summary = init_grid(store, grid, ext, manifest_path=corpus)
        assert summary.offline_datasets == ["glacier"]
        counts = store.counts()
        assert counts["pending"] == 2  # citytemp + buoy
        assert counts["skipped"] == 1  # glacier (offline, not failed)
        assert store.get_meta("corpus_manifest") == str(corpus.resolve())


def test_offline_cells_revive_when_file_appears(db, corpus):
    grid = GridSpec(
        codecs=("gorilla",),
        datasets=("glacier",),
        chunk_elements=(512,),
        target_elements=1024,
    )
    ext = ExternalCorpus.from_manifest(corpus)
    with ExperimentStore(db) as store:
        init_grid(store, grid, ext, manifest_path=corpus)
        assert store.counts()["skipped"] == 1

        # The file arrives (with the right hash) and init revives cells.
        arr = np.cos(np.linspace(0.0, 5.0, 700))
        blob = arr.tobytes()
        (corpus.parent / "glacier.bin").write_bytes(blob)
        payload = json.loads(corpus.read_text())
        payload["datasets"][1]["sha256"] = hashlib.sha256(blob).hexdigest()
        corpus.write_text(json.dumps(payload))

        summary = init_grid(
            store, grid, ExternalCorpus.from_manifest(corpus), corpus
        )
        assert summary.revived == 1
        assert store.counts()["pending"] == 1
    summary = worker_loop(db)
    assert summary["done"] == 1


def test_worker_loop_executes_corpus_cells_through_manifest_meta(db, corpus):
    grid = GridSpec(
        codecs=("gorilla", "chimp"),
        datasets=("buoy",),
        chunk_elements=(512,),
        target_elements=1024,
    )
    ext = ExternalCorpus.from_manifest(corpus)
    with ExperimentStore(db) as store:
        init_grid(store, grid, ext, manifest_path=corpus)
    # worker_loop opens its own corpus from the stored manifest path.
    summary = worker_loop(db)
    assert summary["done"] == 2
    with ExperimentStore(db) as store:
        for cell in store.cells(status="done"):
            assert cell.domain == "OBS"
            # target_elements truncation: 1024 of the 2000 on disk.
            assert cell.input_bytes == 1024 * 8
