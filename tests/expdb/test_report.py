"""Reporting layer: aggregation, statistics wiring, artifacts."""

import json
import math

import pytest

from repro.errors import ExperimentError
from repro.expdb.report import (
    bench_section,
    render_report,
    score_matrix,
    sweep_report,
    write_artifacts,
)
from repro.expdb.store import CellKey, ExperimentStore


@pytest.fixture()
def store(tmp_path):
    with ExperimentStore(tmp_path / "exp.sqlite") as s:
        yield s


def _finish(store, codec, dataset, ratio, domain="TS", policy="fixed", **extra):
    key = CellKey(
        codec=codec,
        dataset=dataset,
        chunk_elements=extra.pop("chunk_elements", 512),
        jobs=1,
        policy=policy,
        seed=extra.pop("seed", 0),
        target_elements=1024,
    )
    store.insert_cells([{**key.as_dict(), "domain": domain}])
    cell = store.find_cell(key)
    store.conn.execute(
        "UPDATE cells SET status = 'claimed', owner = 'w' WHERE id = ?",
        (cell.id,),
    )
    fields = {"ratio": ratio, "encode_mbs": 10.0, "decode_mbs": 20.0}
    if extra.pop("failed", False):
        store.write_result(cell.id, "w", "failed", error="boom")
    else:
        store.write_result(cell.id, "w", "done", fields)
    return cell


# 4 methods x 6 datasets with a strict quality ordering.
METHODS = ("m-best", "m-good", "m-fair", "m-poor")
DATASETS = ("d1", "d2", "d3", "d4", "d5", "d6")


def _fill_grid(store):
    for di, dataset in enumerate(DATASETS):
        for mi, method in enumerate(METHODS):
            _finish(store, method, dataset, ratio=4.0 - mi + 0.01 * di)


def test_score_matrix_shape_and_values(store):
    _fill_grid(store)
    datasets, methods, scores = score_matrix(store)
    assert len(datasets) == 6
    assert methods == sorted(METHODS)
    assert scores.shape == (6, 4)
    best = methods.index("m-best")
    poor = methods.index("m-poor")
    assert (scores[:, best] > scores[:, poor]).all()


def test_score_matrix_averages_configurations(store):
    # Two configurations (chunk sizes) of the same (dataset, method)
    # pair collapse into one mean score: more configs != more weight.
    _finish(store, "m", "d1", ratio=1.0, chunk_elements=256)
    _finish(store, "m", "d1", ratio=3.0, chunk_elements=512)
    _, _, scores = score_matrix(store)
    assert scores[0, 0] == pytest.approx(2.0)


def test_score_matrix_failed_cells_are_nan(store):
    _finish(store, "m-ok", "d1", ratio=2.0)
    _finish(store, "m-bad", "d1", ratio=0.0, failed=True)
    datasets, methods, scores = score_matrix(store)
    bad = methods.index("m-bad")
    ok = methods.index("m-ok")
    assert math.isnan(scores[0, bad])
    assert scores[0, ok] == 2.0


def test_score_matrix_auto_cells_report_policy_label(store):
    _finish(store, "auto", "d1", ratio=2.5, policy="heuristic")
    _, methods, _ = score_matrix(store)
    assert methods == ["auto/heuristic"]


def test_score_matrix_rejects_unknown_metric(store):
    with pytest.raises(ExperimentError, match="metric"):
        score_matrix(store, "vibes")


def test_sweep_report_statistics(store):
    _fill_grid(store)
    report = sweep_report(store)
    stats = report["stats"]
    assert stats["available"]
    assert stats["friedman"]["n_methods"] == 4
    assert stats["friedman"]["n_datasets"] == 6
    # Strict ordering on every dataset -> maximal chi2 for 4x6 and a
    # rejected null.
    assert stats["friedman"]["rejects_null"]
    assert stats["ranking"] == ["m-best", "m-good", "m-fair", "m-poor"]
    assert stats["cd_diagram"].startswith("CD = ")
    assert stats["nemenyi"]["critical_difference"] > 0


def test_sweep_report_without_results(store):
    report = sweep_report(store)
    assert not report["stats"]["available"]
    assert "no finished cells" in report["stats"]["reason"]
    render_report(report)  # must not raise


def test_sweep_report_too_small_for_statistics(store):
    _finish(store, "only-method", "d1", ratio=2.0)
    report = sweep_report(store)
    assert not report["stats"]["available"]
    assert "need >=" in report["stats"]["reason"]


def test_domain_tables_group_by_domain(store):
    _finish(store, "m", "hpc-d", ratio=2.0, domain="HPC")
    _finish(store, "m", "ts-d", ratio=3.0, domain="TS")
    report = sweep_report(store)
    assert set(report["domains"]) == {"HPC", "TS"}
    assert report["domains"]["HPC"]["methods"]["m"]["ratio"] == 2.0


def test_render_report_mentions_everything(store):
    _fill_grid(store)
    text = render_report(sweep_report(store))
    for method in METHODS:
        assert method in text
    assert "Friedman" in text
    assert "CD = " in text


def test_write_artifacts(tmp_path, store):
    _fill_grid(store)
    report = sweep_report(store)
    written = write_artifacts(report, tmp_path / "art")
    names = {p.name for p in written}
    assert names == {"summary.json", "cd_diagram.txt", "report.txt"}
    summary = json.loads((tmp_path / "art" / "summary.json").read_text())
    assert summary["stats"]["ranking"] == report["stats"]["ranking"]
    assert (tmp_path / "art" / "cd_diagram.txt").read_text().startswith("CD = ")


def test_artifacts_json_is_finite_even_with_degenerate_stats(tmp_path, store):
    # Identical scores on every dataset make the Iman-Davenport F
    # degenerate (chi2 == N(k-1) edge); the JSON artifact must still be
    # strictly valid (no NaN/Infinity literals).
    for dataset in ("d1", "d2"):
        _finish(store, "a", dataset, ratio=2.0)
        _finish(store, "b", dataset, ratio=1.0)
    report = sweep_report(store)
    written = write_artifacts(report, tmp_path / "art")
    json.loads((tmp_path / "art" / "summary.json").read_text())


def test_bench_section_compact_summary(tmp_path):
    with ExperimentStore(tmp_path / "exp.sqlite") as store:
        _fill_grid(store)
    section = bench_section(tmp_path / "exp.sqlite")
    assert section["counts"]["done"] == 24
    assert section["ranking"][0] == "m-best"
    assert section["critical_difference"] > 0
    assert section["datasets"] == 6


def test_report_is_deterministic(store):
    _fill_grid(store)
    a = sweep_report(store)
    b = sweep_report(store)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
