"""The ``fcbench sweep`` / ``fcbench report --db`` CLI surface."""

import json

import pytest

from repro.cli import main
from repro.expdb.store import ExperimentStore


@pytest.fixture()
def db(tmp_path):
    return str(tmp_path / "exp.sqlite")


INIT = [
    "sweep",
    "init",
    "--codecs",
    "gorilla,chimp",
    "--datasets",
    "citytemp,msg-bt",
    "--chunk-elements",
    "512",
    "--target-elements",
    "1024",
]


def test_sweep_init_run_status(db, capsys):
    assert main([*INIT, "--db", db]) == 0
    assert "4 total cells" in capsys.readouterr().out

    assert main(["sweep", "run", "--db", db, "--quiet"]) == 0
    assert "executed 4 cells" in capsys.readouterr().out

    assert main(["sweep", "status", "--db", db]) == 0
    assert "4 done" in capsys.readouterr().out


def test_sweep_init_is_idempotent_via_cli(db, capsys):
    main([*INIT, "--db", db])
    capsys.readouterr()
    main([*INIT, "--db", db])
    assert "0 added" in capsys.readouterr().out


def test_sweep_init_rejects_unknown_codec(db, capsys):
    assert main(["sweep", "init", "--db", db, "--codecs", "middle-out"]) == 2
    assert "unknown codec" in capsys.readouterr().err


def test_sweep_run_requires_initialized_db(db, capsys):
    assert main(["sweep", "run", "--db", db]) == 2
    assert "sweep init" in capsys.readouterr().err


def test_sweep_status_json(db, capsys):
    main([*INIT, "--db", db])
    capsys.readouterr()
    assert main(["sweep", "status", "--db", db, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["pending"] == 4
    assert payload["grid"]["codecs"] == ["gorilla", "chimp"]


def test_sweep_worker_verb_json_summary(db, capsys):
    main([*INIT, "--db", db])
    capsys.readouterr()
    assert main(["sweep", "worker", "--db", db, "--json"]) == 0
    summary = json.loads(capsys.readouterr().out.splitlines()[-1])
    assert summary["executed"] == 4
    assert summary["done"] == 4


def test_sweep_reset_requeues_failures(db, capsys):
    main([*INIT, "--db", db])
    main(["sweep", "run", "--db", db, "--quiet"])
    with ExperimentStore(db) as store:
        store.conn.execute(
            "UPDATE cells SET status = 'failed' WHERE id = 1"
        )
    capsys.readouterr()
    assert main(["sweep", "reset", "--db", db]) == 0
    assert "reset 1 cell" in capsys.readouterr().out
    with ExperimentStore(db) as store:
        assert store.counts()["pending"] == 1


def test_report_db_text_and_artifacts(db, tmp_path, capsys):
    main(
        [
            "sweep",
            "init",
            "--db",
            db,
            "--codecs",
            "gorilla,chimp,spdp",
            "--datasets",
            "citytemp,msg-bt,nyc-taxi",
            "--chunk-elements",
            "512",
            "--target-elements",
            "1024",
        ]
    )
    main(["sweep", "run", "--db", db, "--quiet"])
    capsys.readouterr()

    art = tmp_path / "artifacts"
    assert main(["report", "--db", db, "--artifacts", str(art)]) == 0
    out = capsys.readouterr().out
    assert "Friedman" in out
    assert (art / "cd_diagram.txt").exists()
    assert (art / "summary.json").exists()

    assert main(["report", "--db", db, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["done"] == 9
    assert payload["stats"]["available"]


def test_report_db_json_to_file(db, tmp_path, capsys):
    main([*INIT, "--db", db])
    main(["sweep", "run", "--db", db, "--quiet"])
    capsys.readouterr()
    out_path = tmp_path / "report.json"
    assert main(["report", "--db", db, "--json", str(out_path)]) == 0
    assert json.loads(out_path.read_text())["counts"]["done"] == 4


def test_report_db_unknown_metric_rejected(db, capsys):
    main([*INIT, "--db", db])
    assert main(["report", "--db", db, "--metric", "vibes"]) == 2
    assert "sweep metrics" in capsys.readouterr().err


def test_report_db_missing_database(tmp_path, capsys):
    assert main(["report", "--db", str(tmp_path / "nope.sqlite")]) == 2
    assert "no experiment database" in capsys.readouterr().err


def test_report_json_without_db_rejected(capsys):
    assert main(["report", "--json"]) == 2
    assert "--db" in capsys.readouterr().err


def test_sweep_import_cache_cli(db, tmp_path, monkeypatch, capsys):
    cache = tmp_path / "cache"
    cache.mkdir()
    monkeypatch.setenv("FCBENCH_CACHE_DIR", str(cache))
    main(
        [
            "run",
            "--methods",
            "gorilla",
            "--datasets",
            "citytemp",
            "--target-elements",
            "512",
            "--quiet",
        ]
    )
    capsys.readouterr()
    assert main(["sweep", "import-cache", "--db", db]) == 0
    assert "imported 1 cells" in capsys.readouterr().out
    with ExperimentStore(db) as store:
        assert store.counts()["done"] == 1
