"""Cache → database migration, including the re-run round-trip."""

import json

import pytest

from repro.core.executor import CellTask
from repro.core.runner import BenchmarkRunner
from repro.expdb.importer import import_cache
from repro.expdb.store import CellKey, ExperimentStore
from repro.expdb.sweep import execute_cell


@pytest.fixture()
def cache_root(tmp_path, monkeypatch):
    root = tmp_path / "cache"
    root.mkdir()
    monkeypatch.setenv("FCBENCH_CACHE_DIR", str(root))
    return root


@pytest.fixture()
def store(tmp_path):
    with ExperimentStore(tmp_path / "exp.sqlite") as s:
        yield s


def _populate_cache(root, methods=("gorilla", "chimp"), datasets=("citytemp",)):
    from repro.core.cache import CellCache
    from repro.data.catalog import get_spec
    from repro.data.loader import load

    runner = BenchmarkRunner()
    cache = CellCache(root=root, runner=runner)
    tasks = []
    for method in methods:
        for dataset in datasets:
            task = CellTask(method, dataset, target_elements=1024, seed=0)
            measurement = runner.run_cell(
                method, load(dataset, 1024, 0), get_spec(dataset)
            )
            cache.put(task, measurement)
            tasks.append((task, measurement))
    return tasks


def test_import_counts_and_rows(cache_root, store):
    tasks = _populate_cache(cache_root)
    counts = import_cache(store)
    assert counts["imported"] == len(tasks)
    assert counts["imported_done"] == len(tasks)
    assert counts["malformed"] == 0
    cells = store.cells()
    assert len(cells) == len(tasks)
    for cell in cells:
        assert cell.status == "done"
        assert cell.source == "cache-import"
        assert cell.key.chunk_elements == 0
        assert cell.key.jobs == 1
        assert cell.key.policy == "fixed"


def test_import_is_idempotent(cache_root, store):
    _populate_cache(cache_root)
    first = import_cache(store)
    second = import_cache(store)
    assert first["imported"] == 2
    assert second["imported"] == 0
    assert second["skipped_existing"] == 2
    assert store.counts()["total"] == 2


def test_import_skips_stale_entries(cache_root, store):
    _populate_cache(cache_root)
    # Corrupt one entry's cache version: it is stale and must not land.
    cell_file = next(cache_root.glob("cells/gorilla/*.json"))
    payload = json.loads(cell_file.read_text())
    payload["cache_version"] = "v0-ancient"
    cell_file.write_text(json.dumps(payload))
    counts = import_cache(store)
    assert counts["imported"] == 1
    assert counts["skipped_stale"] == 1


def test_import_skips_malformed_entries(cache_root, store):
    _populate_cache(cache_root, methods=("gorilla",))
    cell_file = next(cache_root.glob("cells/gorilla/*.json"))
    payload = json.loads(cell_file.read_text())
    del payload["measurement"]["ok"]
    cell_file.write_text(json.dumps(payload))
    counts = import_cache(store)
    assert counts["imported"] == 0
    assert counts["malformed"] == 1


def test_imported_rows_match_measurements(cache_root, store):
    tasks = _populate_cache(cache_root)
    import_cache(store)
    for task, measurement in tasks:
        cell = store.find_cell(
            CellKey(
                codec=task.method,
                dataset=task.dataset,
                chunk_elements=0,
                jobs=1,
                policy="fixed",
                seed=task.seed,
                target_elements=task.target_elements,
            )
        )
        assert cell is not None
        assert cell.ratio == measurement.compression_ratio
        assert cell.input_bytes == measurement.input_bytes
        assert cell.compressed_bytes == measurement.compressed_bytes
        assert cell.domain == measurement.domain


def test_round_trip_matches_fresh_run(cache_root, store):
    """The ISSUE acceptance check: imported rows == a fresh run's rows.

    A cache-imported cell and a fresh sweep execution of the same
    keyfields must agree on every deterministic resultfield (ratio and
    byte counts; wall-clock throughputs legitimately differ).
    """
    _populate_cache(cache_root)
    import_cache(store)
    for cell in store.cells():
        status, fields, error, _ = execute_cell(cell.key)
        assert status == cell.status, error
        assert fields["ratio"] == cell.ratio
        assert fields["input_bytes"] == cell.input_bytes
        assert fields["compressed_bytes"] == cell.compressed_bytes
