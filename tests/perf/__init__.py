"""Test package."""
