"""Tests for the cost-model dataclasses."""

import pytest

from repro.compressors import get_compressor
from repro.perf.cost import CostModel, KernelSpec, ParallelismSpec, ScalingSpec


def test_kernel_arithmetic_intensity():
    k = KernelSpec("k", int_ops=8.0, flops=2.0, bytes_touched=4.0)
    assert k.total_ops == 10.0
    assert k.arithmetic_intensity == 2.5


def test_invalid_parallelism_kind():
    with pytest.raises(ValueError):
        ParallelismSpec(kind="quantum")


def test_scaling_speedup_monotone_then_rolloff():
    spec = ScalingSpec(0.05, 0.002, 100.0, 100.0)
    speedups = [spec.speedup(t) for t in (1, 2, 4, 8, 16, 48)]
    assert speedups[0] == 1.0
    assert speedups[1] > 1.5
    # USL coherence term must eventually bend the curve down.
    assert spec.speedup(48) < spec.speedup(16)


def test_scaling_rejects_zero_threads():
    with pytest.raises(ValueError):
        ScalingSpec(0.1, 0.001, 1.0, 1.0).speedup(0)


def test_cost_model_validation():
    with pytest.raises(ValueError):
        CostModel(
            platform="tpu",
            parallelism=ParallelismSpec("serial"),
            compress_kernels=(KernelSpec("k", 1.0),),
            decompress_kernels=(KernelSpec("k", 1.0),),
            anchor_compress_gbs=1.0,
            anchor_decompress_gbs=1.0,
        )


def test_dominant_kernel_is_heaviest():
    cost = get_compressor("fpzip").cost
    dom = cost.dominant_kernel("compress")
    assert dom.total_ops == max(k.total_ops for k in cost.compress_kernels)


def test_fixed_footprint_methods():
    # Figure 10: pFPC and SPDP use fixed buffers.
    for name in ("pfpc", "spdp"):
        cost = get_compressor(name).cost
        assert cost.memory_footprint(10**6) == cost.memory_footprint(10**9)


def test_proportional_footprint_methods():
    cost = get_compressor("fpzip").cost
    assert cost.memory_footprint(2 * 10**9) == 2 * cost.memory_footprint(10**9)


def test_buff_footprint_factor_is_seven():
    assert get_compressor("buff").cost.footprint_factor == pytest.approx(7.0)


def test_all_anchors_match_paper_table5():
    paper_ct = {
        "pfpc": 0.564, "spdp": 0.181, "fpzip": 0.079, "bitshuffle-lz4": 0.923,
        "bitshuffle-zstd": 1.407, "ndzip-cpu": 2.192, "buff": 0.202,
        "gorilla": 0.047, "chimp": 0.034, "gfc": 87.778, "mpc": 29.595,
        "nvcomp-lz4": 2.716, "nvcomp-bitcomp": 240.280, "ndzip-gpu": 142.635,
    }
    for name, expected in paper_ct.items():
        assert get_compressor(name).cost.anchor_compress_gbs == pytest.approx(
            expected
        ), name
