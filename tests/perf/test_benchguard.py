"""Perf guard: fail when encode throughput regresses >30% vs. the baseline.

Opt-in via ``pytest -m perf`` (deselected by default through pytest.ini's
``addopts``), because wall-clock assertions belong in a perf lane, not in
the deterministic tier-1 run.  The baseline is the newest committed
``BENCH_*.json`` at the repo root; its ``guard`` cells are small enough
to re-measure in a few seconds.

Absolute MB/s numbers are machine- and load-dependent (a shared host can
easily swing 2x), so the guard compares *speedup ratios* — vectorized
encode over the scalar oracle, re-measured back-to-back on the same
machine — against the baseline's recorded ratio.  Both measurements see
the same load, so the ratio is portable where raw throughput is not.
"""

from __future__ import annotations

import json

import pytest

from repro.perf import bench

#: Allowed slowdown before the guard trips (0.7 == a >30% regression).
THRESHOLD = 0.7


def _baseline():
    path = bench.latest_snapshot(bench.repo_root())
    if path is None:
        pytest.skip("no committed BENCH_*.json baseline at the repo root")
    report = json.loads(path.read_text())
    if not report.get("guard"):
        pytest.skip(f"{path.name} carries no guard cells")
    return path, report


@pytest.mark.perf
def test_guard_cells_hold_encode_throughput():
    path, report = _baseline()
    failures = []
    for recorded in report["guard"]:
        baseline_speedup = recorded.get("encode_speedup_vs_scalar")
        if not baseline_speedup:
            pytest.skip(
                f"{path.name} guard cells predate the speedup-ratio format"
            )
        fresh = bench.bench_cell(
            recorded["method"],
            recorded["dataset"],
            recorded["elements"],
            repeats=3,
            oracle=True,
        )
        ratio = fresh["encode_speedup_vs_scalar"] / baseline_speedup
        if ratio < THRESHOLD:
            failures.append(
                f"{recorded['method']}/{recorded['dataset']}: "
                f"{fresh['encode_speedup_vs_scalar']:.1f}x vs-scalar now, "
                f"baseline {baseline_speedup:.1f}x ({ratio:.2f} of baseline)"
            )
    assert not failures, (
        f"encode speedup regressed >30% vs {path.name}:\n"
        + "\n".join(failures)
    )


@pytest.mark.perf
def test_vectorized_encode_still_beats_scalar_oracle():
    """Machine-independent floor: the rewrite must stay well ahead of seed."""
    cell = bench.bench_cell(
        "gorilla", bench.GUARD_DATASET, 100_000, repeats=2, oracle=True
    )
    assert cell["encode_speedup_vs_scalar"] > 3.0
    cell = bench.bench_cell(
        "chimp", bench.GUARD_DATASET, 100_000, repeats=2, oracle=True
    )
    assert cell["encode_speedup_vs_scalar"] > 3.0
