"""Tests for the roofline analysis (Figure 11)."""

from repro.compressors import get_compressor
from repro.perf.roofline import analyze, cpu_roof_gops, gpu_roof_gops


def test_cpu_roof_shape():
    # Memory-bound region slopes up, compute region is flat.
    assert cpu_roof_gops(0.1) < cpu_roof_gops(0.5)
    assert cpu_roof_gops(10.0) == cpu_roof_gops(100.0) == 191.0


def test_gpu_roof_uses_dram_bandwidth():
    assert gpu_roof_gops(1.0) == 621.5


def test_serial_methods_are_overhead_bound():
    # Observation 10: serial methods sit far below both roofs.
    for name in ("fpzip", "gorilla", "chimp", "buff", "spdp"):
        comp = get_compressor(name)
        point = analyze(name, comp.cost, comp.cost.anchor_compress_gbs)
        assert point.bound == "overhead", name


def test_ndzip_methods_compute_bound():
    for name in ("ndzip-cpu", "ndzip-gpu"):
        comp = get_compressor(name)
        point = analyze(name, comp.cost, comp.cost.anchor_compress_gbs)
        assert point.bound == "compute", name


def test_gpu_delta_methods_memory_bound():
    for name in ("gfc", "nvcomp-bitcomp", "mpc"):
        comp = get_compressor(name)
        point = analyze(name, comp.cost, comp.cost.anchor_compress_gbs)
        assert point.bound == "memory", name


def test_nvcomp_lz4_divergence_keeps_it_low():
    comp = get_compressor("nvcomp-lz4")
    point = analyze("nvcomp-lz4", comp.cost, comp.cost.anchor_compress_gbs)
    assert point.bound == "overhead"
    assert point.roof_fraction < 0.05


def test_achieved_consistent_with_throughput():
    comp = get_compressor("gfc")
    point = analyze("gfc", comp.cost, 10.0)
    kernel = comp.cost.dominant_kernel("compress")
    assert point.achieved_gops == kernel.total_ops * 10.0
