"""Tests for the performance model's timing composition."""

import pytest

from repro.compressors import get_compressor
from repro.perf.timing import PerformanceModel

PERF = PerformanceModel()
GB = 10**9


def test_throughput_matches_anchor_at_default_block():
    cost = get_compressor("pfpc").cost
    assert PERF.throughput_gbs(cost, GB) == pytest.approx(0.564)


def test_small_blocks_slow_cpu_methods():
    cost = get_compressor("pfpc").cost
    rate_4k = PERF.throughput_gbs(cost, GB, block_bytes=4096)
    rate_64k = PERF.throughput_gbs(cost, GB, block_bytes=65536)
    rate_8m = PERF.throughput_gbs(cost, GB, block_bytes=8 << 20)
    assert rate_4k < rate_64k < rate_8m


def test_bitshuffle_cache_rolloff_at_8m():
    # Table 10: bitshuffle peaks at 64 KB (L1/L2 residency), not 8 MB.
    cost = get_compressor("bitshuffle-lz4").cost
    rate_64k = PERF.throughput_gbs(cost, GB, block_bytes=65536)
    rate_8m = PERF.throughput_gbs(cost, GB, block_bytes=8 << 20)
    assert rate_8m < rate_64k


def test_gpu_end_to_end_includes_transfers():
    cost = get_compressor("gfc").cost
    kernel = PERF.kernel_seconds(cost, GB, "compress")
    total = PERF.end_to_end_seconds(cost, GB, GB // 2, "compress")
    assert total > kernel * 3  # PCIe dominates GFC's wall time


def test_cpu_end_to_end_equals_kernel_time():
    cost = get_compressor("fpzip").cost
    kernel = PERF.kernel_seconds(cost, GB, "compress")
    total = PERF.end_to_end_seconds(cost, GB, GB // 2, "compress")
    assert total == pytest.approx(kernel)


def test_breakdown_components_sum():
    cost = get_compressor("mpc").cost
    b = PERF.breakdown(cost, GB, GB // 2, "compress")
    assert b.total_seconds == pytest.approx(
        b.kernel_seconds + b.transfer_seconds + b.launch_seconds
    )


def test_gpu_faster_than_cpu_kernels():
    # Observation 3: GPU methods are orders of magnitude faster.
    gfc = PERF.throughput_gbs(get_compressor("gfc").cost, GB)
    gorilla = PERF.throughput_gbs(get_compressor("gorilla").cost, GB)
    assert gfc / gorilla > 350


def test_scaled_throughput_requires_scaling_spec():
    with pytest.raises(ValueError):
        PERF.scaled_throughput_mbs(get_compressor("gfc").cost, 4)


def test_invalid_direction_rejected():
    with pytest.raises(ValueError):
        PERF.kernel_seconds(get_compressor("gfc").cost, GB, "sideways")
