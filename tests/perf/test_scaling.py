"""Tests for the thread-scaling model (Tables 7-8)."""

import pytest

from repro.compressors import get_compressor
from repro.perf.timing import PerformanceModel

PERF = PerformanceModel()


def test_single_thread_rates_match_paper():
    # Table 7's thread-1 row.
    expected = {
        "pfpc": 133.0, "bitshuffle-lz4": 997.0,
        "bitshuffle-zstd": 250.0, "ndzip-cpu": 1655.0,
    }
    for name, mbs in expected.items():
        cost = get_compressor(name).cost
        assert PERF.scaled_throughput_mbs(cost, 1) == pytest.approx(mbs)


def test_parallel_methods_scale_up():
    # Observation 7: 3-4x speedup by 16-24 threads.
    for name in ("pfpc", "bitshuffle-lz4", "bitshuffle-zstd"):
        cost = get_compressor(name).cost
        t1 = PERF.scaled_throughput_mbs(cost, 1)
        t24 = PERF.scaled_throughput_mbs(cost, 24)
        assert t24 / t1 > 2.5, name


def test_oversubscription_hurts():
    for name in ("pfpc", "bitshuffle-lz4", "bitshuffle-zstd"):
        cost = get_compressor(name).cost
        best = max(
            PERF.scaled_throughput_mbs(cost, t) for t in (8, 16, 24, 32)
        )
        assert PERF.scaled_throughput_mbs(cost, 48) < best, name


def test_ndzip_cpu_does_not_scale():
    # The paper attributes flat scaling to an implementation issue.
    cost = get_compressor("ndzip-cpu").cost
    t1 = PERF.scaled_throughput_mbs(cost, 1)
    t16 = PERF.scaled_throughput_mbs(cost, 16)
    assert t16 == pytest.approx(t1, rel=0.05)


def test_zstd_scales_best():
    # Table 7: bitshuffle+zstd reaches ~11x, the best of the four.
    zstd = get_compressor("bitshuffle-zstd").cost
    lz4 = get_compressor("bitshuffle-lz4").cost
    scaled = PERF.scaled_throughput_mbs
    zstd_speedup = scaled(zstd, 24) / scaled(zstd, 1)
    lz4_speedup = scaled(lz4, 24) / scaled(lz4, 1)
    assert zstd_speedup > lz4_speedup
    assert zstd_speedup > 6.0
