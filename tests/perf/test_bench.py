"""Throughput-bench harness: schema, snapshots, and diffs."""

from __future__ import annotations

import json

import pytest

from repro.perf import bench


@pytest.fixture(scope="module")
def tiny_report():
    return bench.run_bench(
        methods=["gorilla", "chimp"],
        datasets=["citytemp"],
        elements=2048,
        repeats=1,
        oracle=True,
        guard=False,
    )


class TestRunBench:
    def test_schema(self, tiny_report):
        assert tiny_report["schema"] == bench.SCHEMA_VERSION
        assert tiny_report["elements"] == 2048
        assert len(tiny_report["cells"]) == 2
        cell = tiny_report["cells"][0]
        for key in (
            "method",
            "dataset",
            "compress_s",
            "decompress_s",
            "compress_mbs",
            "decompress_mbs",
            "compression_ratio",
        ):
            assert key in cell
        assert cell["compress_mbs"] > 0
        assert cell["decompress_mbs"] > 0

    def test_oracle_fields_present_for_rewritten_codecs(self, tiny_report):
        for cell in tiny_report["cells"]:
            assert cell["encode_speedup_vs_scalar"] > 0
            assert cell["scalar_compress_mbs"] > 0

    def test_guard_cells(self):
        report = bench.run_bench(
            methods=["gorilla"],
            datasets=["citytemp"],
            elements=1024,
            repeats=1,
            oracle=False,
            guard=True,
        )
        assert [c["method"] for c in report["guard"]] == list(
            bench.GUARD_METHODS
        )
        assert all(
            c["elements"] == bench.GUARD_ELEMENTS for c in report["guard"]
        )

    def test_on_cell_streams(self):
        seen = []
        bench.run_bench(
            methods=["gorilla"],
            datasets=["citytemp"],
            elements=512,
            repeats=1,
            oracle=False,
            guard=False,
            on_cell=lambda cell: seen.append(cell["method"]),
        )
        assert seen == ["gorilla"]


class TestSnapshots:
    def test_write_find_latest_and_diff(self, tiny_report, tmp_path):
        old = dict(tiny_report, git_sha="aaaaaaa", created="2026-01-01T00:00:00")
        new = dict(tiny_report, git_sha="bbbbbbb", created="2026-02-01T00:00:00")
        old_path = bench.write_report(old, tmp_path)
        new_path = bench.write_report(new, tmp_path)
        assert old_path.name == "BENCH_aaaaaaa.json"
        assert json.loads(new_path.read_text())["git_sha"] == "bbbbbbb"
        assert bench.find_snapshots(tmp_path) == [old_path, new_path]
        assert bench.latest_snapshot(tmp_path) == new_path
        assert bench.latest_snapshot(tmp_path, exclude=new_path) == old_path

        diff = bench.diff_reports(old, new)
        assert "gorilla" in diff and "citytemp" in diff
        assert "1.00x" in diff  # identical cells diff to exactly 1.00x

    def test_diff_marks_new_cells(self, tiny_report):
        old = dict(tiny_report, cells=[])
        assert "new" in bench.diff_reports(old, tiny_report)

    def test_corrupt_snapshot_ignored(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        assert bench.find_snapshots(tmp_path) == []

    def test_git_sha_shape(self):
        sha = bench.git_sha()
        assert sha == "unknown" or 4 <= len(sha) <= 40


class TestOracleVerification:
    def test_bench_cell_asserts_byte_identity(self, monkeypatch):
        from repro.compressors import get_compressor

        compressor = get_compressor("gorilla")
        monkeypatch.setattr(
            type(compressor), "_compress_scalar", lambda self, a: b"bogus"
        )
        with pytest.raises(AssertionError):
            bench.bench_cell("gorilla", "citytemp", 256, repeats=1)
