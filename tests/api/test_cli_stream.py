"""End-to-end tests for the streaming CLI surface."""

import json

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture
def npy(tmp_path):
    path = tmp_path / "field.npy"
    rng = np.random.default_rng(3)
    np.save(path, np.cumsum(rng.normal(0, 1, (40, 500)), axis=1))
    return path


@pytest.mark.smoke
def test_compress_decompress_roundtrip(tmp_path, npy, capsys):
    fcf = tmp_path / "field.fcf"
    back = tmp_path / "back.npy"
    assert main(["compress", str(npy), str(fcf), "--codec", "gorilla",
                 "--chunk-elements", "4096", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "20000 elements" in out and "codec gorilla" in out
    assert main(["decompress", str(fcf), str(back)]) == 0
    original = np.load(npy)
    restored = np.load(back)
    assert restored.shape == original.shape
    np.testing.assert_array_equal(
        restored.view(np.uint64), original.view(np.uint64)
    )


def test_inspect_json(tmp_path, npy, capsys):
    fcf = tmp_path / "field.fcf"
    main(["compress", str(npy), str(fcf), "--codec", "chimp",
          "--chunk-elements", "2048", "--quiet"])
    assert capsys.readouterr().out == ""
    assert main(["inspect", str(fcf), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["codec"] == "chimp"
    assert payload["shape"] == [40, 500]
    assert payload["n_chunks"] == 10
    assert sum(c["n_elements"] for c in payload["chunks"]) == 20000
    assert payload["raw_bytes"] == 160000


def test_unknown_codec_is_a_usage_error(tmp_path, npy):
    assert main(["compress", str(npy), str(tmp_path / "x.fcf"),
                 "--codec", "gzip"]) == 2


def test_compress_rejects_integer_npy(tmp_path):
    path = tmp_path / "ints.npy"
    np.save(path, np.arange(10))
    assert main(["compress", str(path), str(tmp_path / "x.fcf")]) == 2


def test_decompress_rejects_non_fcf(tmp_path):
    junk = tmp_path / "junk.fcf"
    junk.write_bytes(b"this is not a frame stream at all")
    assert main(["decompress", str(junk), str(tmp_path / "y.npy")]) == 2
    assert main(["inspect", str(junk)]) == 2


def test_list_json_registry_dump(capsys):
    assert main(["list", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["methods"]) == 14
    gorilla = next(m for m in payload["methods"] if m["name"] == "gorilla")
    # Full MethodInfo row, machine-readable.
    assert gorilla["display_name"] == "Gorilla"
    assert set(gorilla) >= {"name", "display_name", "year", "domain",
                            "precisions", "platform", "parallelism",
                            "language", "trait", "predictor_family"}
    assert len(payload["datasets"]) == 33
    assert all("name" in d and "domain" in d for d in payload["datasets"])
    assert "none" in payload["frame_codecs"]
    assert len(payload["frame_codecs"]) == 16
