"""Mixed-codec (FCF v2) streams: the `auto` pseudo-codec end to end.

Covers the tentpole guarantees: adaptive streams round-trip bit-exactly
with more than one codec in play, fixed-codec streams still emit format
v1 byte-for-byte, the chunk-parallel path is byte-identical to serial,
corruption anywhere surfaces as CorruptStreamError, and the heuristic
policy achieves >= 95% of the best fixed codec's compression ratio on
the generated 4-domain corpus (the paper's per-domain winners, online).
"""

import io

import numpy as np
import pytest

from repro.api import (
    AUTO_CODEC,
    FORMAT_V2,
    FORMAT_VERSION,
    DecompressSession,
    StreamHeader,
    compress_array,
    decompress_array,
)
from repro.api import frames as _frames
from repro.api.session import CompressSession
from repro.errors import CorruptStreamError, SelectionError
from repro.select.policy import (
    HeuristicPolicy,
    MeasuredPolicy,
    SelectionPolicy,
)

CHUNK = 2048


def _mixed_array():
    """Three regimes so a selecting writer must mix codecs."""
    rng = np.random.default_rng(0)
    smooth = np.sin(np.linspace(0.0, 20.0, 2 * CHUNK))
    decimal = np.round(rng.normal(10.0, 2.0, 2 * CHUNK), 2)
    noise = rng.normal(0.0, 1.0, 2 * CHUNK)
    return np.concatenate([smooth, decimal, noise])


def _bits(array):
    return array.ravel().view(np.uint64 if array.dtype.itemsize == 8 else np.uint32)


# ----------------------------------------------------------------------
# Round trips and stream shape
# ----------------------------------------------------------------------
def test_auto_stream_roundtrips_and_mixes_codecs():
    array = _mixed_array()
    blob = compress_array(array, AUTO_CODEC, chunk_elements=CHUNK)
    assert blob[:4] == _frames.FRAME_MAGIC
    assert blob[4] == FORMAT_V2
    out = decompress_array(blob)
    assert np.array_equal(_bits(out), _bits(array))
    with DecompressSession(blob) as stream:
        assert stream.codec_name == AUTO_CODEC
        assert stream.format_version == FORMAT_V2
        names = stream.frame_codec_names()
        assert len(names) == stream.n_chunks
        assert len(set(names)) >= 2, "engineered regimes should mix codecs"
        assert set(names) <= set(stream.codec_table)


def test_fixed_codec_still_writes_v1():
    array = _mixed_array()
    blob = compress_array(array, "gorilla", chunk_elements=CHUNK)
    assert blob[4] == FORMAT_VERSION
    with DecompressSession(blob) as stream:
        assert stream.format_version == FORMAT_VERSION
        assert stream.codec_table == ()
        assert stream.frame_codec_names() == ["gorilla"] * stream.n_chunks


def test_auto_session_tracks_codec_frames():
    array = _mixed_array()
    buf = io.BytesIO()
    with CompressSession(buf, AUTO_CODEC, chunk_elements=CHUNK) as session:
        session.write(array)
    assert sum(session.codec_frames.values()) == len(session.frames)
    assert len(session.codec_frames) >= 2


def test_auto_roundtrip_float32_and_empty():
    array = _mixed_array().astype(np.float32)
    blob = compress_array(array, AUTO_CODEC, chunk_elements=CHUNK)
    assert np.array_equal(_bits(decompress_array(blob)), _bits(array))
    empty = np.empty(0, dtype=np.float64)
    blob = compress_array(empty, AUTO_CODEC)
    assert decompress_array(blob).size == 0


def test_auto_random_access_reads():
    array = _mixed_array()
    blob = compress_array(array, AUTO_CODEC, chunk_elements=CHUNK)
    with DecompressSession(blob) as stream:
        window = stream.read(CHUNK - 5, 3 * CHUNK + 7)
        assert np.array_equal(_bits(window), _bits(array[CHUNK - 5 : 3 * CHUNK + 7]))
        chunks = list(stream.chunks())
        assert sum(c.size for c in chunks) == array.size


@pytest.mark.parametrize("policy", ["heuristic", "measured"])
def test_parallel_auto_write_is_byte_identical(policy):
    array = _mixed_array()
    resolved = (
        MeasuredPolicy(sample_elements=256) if policy == "measured" else "heuristic"
    )
    serial = compress_array(array, AUTO_CODEC, chunk_elements=CHUNK, policy=resolved)
    fanned = compress_array(
        array, AUTO_CODEC, chunk_elements=CHUNK, policy=resolved, jobs=2
    )
    assert serial == fanned


def test_parallel_auto_decode_matches_serial():
    array = _mixed_array()
    blob = compress_array(array, AUTO_CODEC, chunk_elements=CHUNK)
    serial = decompress_array(blob)
    fanned = decompress_array(blob, jobs=2)
    assert np.array_equal(_bits(serial), _bits(fanned))


def test_measured_policy_stream_roundtrips():
    array = _mixed_array()
    policy = MeasuredPolicy(sample_elements=256)
    blob = compress_array(array, policy, chunk_elements=CHUNK)
    assert blob[4] == FORMAT_V2
    assert np.array_equal(_bits(decompress_array(blob)), _bits(array))


# ----------------------------------------------------------------------
# Corruption fuzz (v2-specific surfaces + whole-stream damage)
# ----------------------------------------------------------------------
def _expect_corrupt_or_exact(decode, original):
    try:
        out = decode()
    except CorruptStreamError:
        return
    except BaseException as exc:  # noqa: BLE001 - the point of the test
        pytest.fail(
            f"leaked {type(exc).__name__} instead of CorruptStreamError: {exc}"
        )
    assert out.size == original.size and np.array_equal(
        _bits(np.asarray(out)), _bits(original)
    ), "damaged stream decoded to different data without an error"


def test_v2_stream_truncation_everywhere():
    array = _mixed_array()[: 2 * CHUNK + 17]
    blob = compress_array(array, AUTO_CODEC, chunk_elements=CHUNK)
    cuts = sorted(set(range(0, len(blob), max(1, len(blob) // 64))) | {len(blob) - 1})
    for cut in cuts:
        _expect_corrupt_or_exact(lambda c=cut: decompress_array(blob[:c]), array)


def test_v2_stream_byte_flips_everywhere():
    array = _mixed_array()[: 2 * CHUNK + 17]
    blob = compress_array(array, AUTO_CODEC, chunk_elements=CHUNK)
    positions = sorted(
        set(range(0, len(blob), max(1, len(blob) // 96))) | {4, 5, len(blob) - 1}
    )
    for position in positions:
        damaged = bytearray(blob)
        damaged[position] ^= 0x5A
        _expect_corrupt_or_exact(
            lambda d=bytes(damaged): decompress_array(d), array
        )


def test_frame_codec_id_out_of_table_is_corruption():
    with pytest.raises(CorruptStreamError):
        _frames.split_frame_codec(b"\x07payload", n_codecs=4)
    # A truncated varint prefix is corruption too, not an IndexError.
    with pytest.raises(CorruptStreamError):
        _frames.split_frame_codec(b"", n_codecs=4)


def test_header_with_unknown_table_codec_fails_at_open():
    header = StreamHeader(
        AUTO_CODEC,
        np.dtype(np.float64),
        CHUNK,
        version=FORMAT_V2,
        codec_table=("gorilla", "definitely-not-a-codec"),
    ).encode()
    index = _frames.encode_index([], (0,))
    blob = header + index + len(index).to_bytes(8, "little") + _frames.END_MAGIC
    with pytest.raises(CorruptStreamError):
        DecompressSession(blob)


def test_header_rejects_hostile_codec_tables():
    # magic | version=2 | dtype=f64 | codec "auto" | chunk_elements=16
    prefix = _frames.FRAME_MAGIC + bytes([FORMAT_V2, 1]) + b"\x04auto" + b"\x10"
    name = b"\x07gorilla"
    # Duplicate table entries, crafted at the byte level.
    with pytest.raises(CorruptStreamError):
        StreamHeader.decode(prefix + b"\x02" + name + name)
    # Table size beyond the hard bound (33 > 32), entries absent.
    with pytest.raises(CorruptStreamError):
        StreamHeader.decode(prefix + b"\x21")
    # Zero-size table.
    with pytest.raises(CorruptStreamError):
        StreamHeader.decode(prefix + b"\x00")


def test_v2_header_encode_validation():
    with pytest.raises(ValueError):
        StreamHeader(
            AUTO_CODEC, np.dtype(np.float64), 1, version=FORMAT_V2, codec_table=()
        ).encode()
    with pytest.raises(ValueError):
        StreamHeader(
            "gorilla",
            np.dtype(np.float64),
            1,
            codec_table=("gorilla",),
        ).encode()
    with pytest.raises(ValueError):
        StreamHeader(
            AUTO_CODEC,
            np.dtype(np.float64),
            1,
            version=FORMAT_V2,
            codec_table=("gorilla", "gorilla"),
        ).encode()


def test_v2_header_roundtrip():
    header = StreamHeader(
        AUTO_CODEC,
        np.dtype(np.float32),
        4096,
        version=FORMAT_V2,
        codec_table=("bitshuffle-zstd", "fpzip"),
    )
    decoded, size = StreamHeader.decode(header.encode())
    assert decoded == header
    assert size == len(header.encode())


def test_policy_choosing_outside_table_is_a_selection_error():
    class RoguePolicy(SelectionPolicy):
        name = "rogue"
        candidates = ("gorilla",)

        def decide(self, chunk):
            from repro.select.policy import SelectionDecision

            return SelectionDecision("chimp", "off the table", None)

    buf = io.BytesIO()
    session = CompressSession(buf, RoguePolicy(), chunk_elements=64)
    with pytest.raises(SelectionError):
        session.write(np.zeros(256))
        session.close()


# ----------------------------------------------------------------------
# Acceptance: auto >= 95% of the best fixed codec, one dataset per domain
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "dataset", ["num-brain", "citytemp", "hst-wfc3-ir", "tpcH-order"]
)
def test_heuristic_auto_within_95_percent_of_best_fixed(dataset):
    """Multi-chunk regime on purpose: selection runs per 4 Ki chunk, the
    same granularity `fcbench bench --auto` measures, so threshold
    regressions that only appear at finer chunking fail here."""
    from repro.data.loader import load

    policy = HeuristicPolicy()
    array = load(dataset, 8192, 0)
    auto_blob = compress_array(array, policy, chunk_elements=4096)
    assert np.array_equal(_bits(decompress_array(auto_blob)), _bits(array))
    best = min(
        len(compress_array(array, name, chunk_elements=4096))
        for name in policy.candidates
    )
    fraction = best / len(auto_blob)
    assert fraction >= 0.95, (
        f"auto achieved {fraction:.1%} of the best fixed codec on {dataset}"
    )
