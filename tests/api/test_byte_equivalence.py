"""Byte-equivalence guarantees of the streaming redesign (satellite).

1. A chunk-parallel ``CompressSession`` writes the exact bytes the
   serial path writes, for every registered method — parallelism is a
   scheduling decision, never a format decision.
2. Single-chunk session output round-trips through the legacy
   ``Compressor.decompress`` shim for every method, so readers written
   against the old one-shot API keep working on FCF streams.
3. The legacy ``compress`` output itself is unchanged by the redesign
   (pinned against an independent reimplementation of the old framing).
"""

import numpy as np
import pytest

from repro.api import compress_array, decompress_array
from repro.compressors import compressor_names, get_compressor
from repro.encodings.varint import encode_uvarint

ALL_METHODS = compressor_names()


def _sample(comp, n=3000):
    rng = np.random.default_rng(5)
    dtype = np.float64 if "D" in comp.info.precisions else np.float32
    arr = np.cumsum(rng.normal(0, 1, n)).astype(dtype)
    arr[3] = np.nan
    return arr


@pytest.mark.parametrize("name", ALL_METHODS)
def test_parallel_session_is_byte_identical_to_serial(name):
    comp = get_compressor(name)
    arr = _sample(comp)
    serial = compress_array(arr, comp, chunk_elements=512)
    parallel = compress_array(arr, comp, chunk_elements=512, jobs=3)
    assert serial == parallel


@pytest.mark.parametrize("name", ALL_METHODS)
def test_single_chunk_session_roundtrips_through_legacy_shim(name):
    comp = get_compressor(name)
    arr = _sample(comp, n=700)
    blob = compress_array(arr, comp, chunk_elements=arr.size)
    restored = comp.decompress(blob)  # the deprecated one-shot surface
    uint = np.uint64 if arr.dtype.itemsize == 8 else np.uint32
    np.testing.assert_array_equal(
        restored.ravel().view(uint), arr.view(uint)
    )


@pytest.mark.parametrize("name", ALL_METHODS)
def test_legacy_compress_format_is_frozen(name):
    """The shim must keep emitting the pre-redesign one-shot layout."""
    comp = get_compressor(name)
    arr = _sample(comp, n=257).reshape(257)
    blob = comp.compress(arr)
    dtype_code = 1 if arr.dtype == np.float64 else 0
    expected_header = (
        bytes([0xFC, dtype_code]) + encode_uvarint(1) + encode_uvarint(257)
    )
    assert blob[: len(expected_header)] == expected_header
    assert blob[len(expected_header) :] == comp._compress(
        comp._validate(arr)
    )


def test_multi_chunk_fcf_also_accepted_by_legacy_shim():
    comp = get_compressor("chimp")
    arr = _sample(comp)
    blob = compress_array(arr, comp, chunk_elements=256)
    np.testing.assert_array_equal(
        comp.decompress(blob).view(np.uint64), arr.view(np.uint64)
    )


def test_fcf_streams_decode_without_naming_a_codec():
    # The stream is self-describing: the reader resolves the codec from
    # the header, whatever instance the shim was called on.
    arr = _sample(get_compressor("gorilla"))
    blob = compress_array(arr, "gorilla", chunk_elements=1024)
    np.testing.assert_array_equal(
        decompress_array(blob).view(np.uint64), arr.view(np.uint64)
    )
