"""Unit tests for the FCF frame format primitives."""

import io

import numpy as np
import pytest

from repro.api import frames
from repro.compressors import get_compressor
from repro.encodings.varint import encode_uvarint
from repro.errors import CorruptStreamError


# ----------------------------------------------------------------------
# Header
# ----------------------------------------------------------------------
def test_header_roundtrip():
    header = frames.StreamHeader("gorilla", np.dtype(np.float64), 4096)
    blob = header.encode()
    decoded, size = frames.StreamHeader.decode(blob)
    assert decoded == header
    assert size == len(blob)


def test_header_rejects_bad_magic():
    with pytest.raises(CorruptStreamError, match="magic"):
        frames.StreamHeader.decode(b"JUNKJUNKJUNK")


def test_header_rejects_future_version():
    blob = bytearray(frames.StreamHeader("chimp", np.float64, 1).encode())
    blob[4] = 99
    with pytest.raises(CorruptStreamError, match="version"):
        frames.StreamHeader.decode(bytes(blob))


def test_header_rejects_unknown_dtype_code():
    blob = bytearray(frames.StreamHeader("chimp", np.float64, 1).encode())
    blob[5] = 7
    with pytest.raises(CorruptStreamError, match="dtype"):
        frames.StreamHeader.decode(bytes(blob))


def test_header_rejects_integer_dtype_on_encode():
    with pytest.raises(ValueError):
        frames.StreamHeader("chimp", np.int32, 1).encode()


# ----------------------------------------------------------------------
# Index
# ----------------------------------------------------------------------
def test_index_roundtrip():
    entries = [(100, 37, 0xAA), (100, 41, 0xBB), (50, 12, 0xCC)]
    blob = frames.encode_index(entries, (5, 50))
    index = frames.decode_index(blob, data_start=10, data_length=90)
    assert index.shape == (5, 50)
    assert index.n_elements == 250
    assert index.compressed_bytes == 90
    assert [f.offset for f in index.frames] == [10, 47, 88]
    assert [f.crc32 for f in index.frames] == [0xAA, 0xBB, 0xCC]


def test_index_rejects_payload_size_mismatch():
    blob = frames.encode_index([(100, 37, 0)], (100,))
    with pytest.raises(CorruptStreamError, match="payload bytes"):
        frames.decode_index(blob, data_start=0, data_length=36)


def test_index_rejects_shape_count_mismatch():
    blob = frames.encode_index([(100, 37, 0)], (99,))
    with pytest.raises(CorruptStreamError, match="declares"):
        frames.decode_index(blob, data_start=0, data_length=37)


def test_index_rejects_trailing_garbage():
    blob = frames.encode_index([(100, 37, 0)], (100,)) + b"\x00"
    with pytest.raises(CorruptStreamError, match="trailing"):
        frames.decode_index(blob, data_start=0, data_length=37)


def test_payload_crc_verified_before_decode():
    comp = get_compressor("gorilla")
    arr = np.linspace(0, 1, 256)
    payload = frames.encode_payload(comp, arr)
    import zlib

    crc = zlib.crc32(payload) & 0xFFFFFFFF
    out = frames.decode_payload(comp, payload, 256, np.float64, crc)
    np.testing.assert_array_equal(out, arr)
    damaged = bytearray(payload)
    damaged[len(damaged) // 2] ^= 0x01
    with pytest.raises(CorruptStreamError, match="checksum"):
        frames.decode_payload(comp, bytes(damaged), 256, np.float64, crc)


def test_index_rejects_absurd_chunk_count():
    blob = encode_uvarint(1 << 50) + b"\x01\x01"
    with pytest.raises(CorruptStreamError):
        frames.decode_index(blob, data_start=0, data_length=1)


def test_index_rejects_absurd_rank():
    blob = encode_uvarint(0) + encode_uvarint(40)
    with pytest.raises(CorruptStreamError, match="rank"):
        frames.decode_index(blob, data_start=0, data_length=0)


# ----------------------------------------------------------------------
# read_layout
# ----------------------------------------------------------------------
def test_read_layout_rejects_short_stream():
    with pytest.raises(CorruptStreamError, match="too short"):
        frames.read_layout(io.BytesIO(b"FCF1"))


def test_read_layout_rejects_missing_end_magic():
    blob = frames.StreamHeader("chimp", np.float64, 1).encode() + b"\x00" * 20
    with pytest.raises(CorruptStreamError, match="end magic"):
        frames.read_layout(io.BytesIO(blob))


def test_read_layout_rejects_oversized_index_length():
    header = frames.StreamHeader("chimp", np.float64, 1).encode()
    footer = (1 << 40).to_bytes(8, "little") + frames.END_MAGIC
    with pytest.raises(CorruptStreamError, match="index length"):
        frames.read_layout(io.BytesIO(header + footer))


# ----------------------------------------------------------------------
# Payload codec
# ----------------------------------------------------------------------
def test_raw_payload_roundtrip():
    arr = np.linspace(0, 1, 64)
    blob = frames.encode_payload(None, arr)
    assert blob == arr.tobytes()
    out = frames.decode_payload(None, blob, 64, np.float64)
    np.testing.assert_array_equal(out, arr)


def test_raw_payload_length_validated():
    with pytest.raises(CorruptStreamError, match="raw frame"):
        frames.decode_payload(None, b"\x00" * 24, 4, np.float64)


def test_f32_reinterpret_roundtrip_odd_tail():
    comp = get_compressor("gfc")  # double-only
    arr = np.random.default_rng(0).normal(0, 1, 101).astype(np.float32)
    blob = frames.encode_payload(comp, arr)
    out = frames.decode_payload(comp, blob, 101, np.dtype(np.float32))
    np.testing.assert_array_equal(out.view(np.uint32), arr.view(np.uint32))


def test_unknown_codec_is_corrupt_stream():
    with pytest.raises(CorruptStreamError, match="unknown codec"):
        frames.resolve_codec("gzip")


# ----------------------------------------------------------------------
# Hostile metadata (satellite: bound count against payload length)
# ----------------------------------------------------------------------
def test_hostile_legacy_header_rejected_before_allocation():
    comp = get_compressor("gorilla")
    hostile = (
        bytes([0xFC, 1])
        + encode_uvarint(1)
        + encode_uvarint(1 << 60)  # ~9 exabytes of float64
        + b"\x00" * 100
    )
    with pytest.raises(CorruptStreamError, match="declares"):
        comp.decompress(hostile)


def test_hostile_count_bound_is_per_codec():
    # fpzip's adaptive coder legitimately reaches thousands of elements
    # per byte; its bound must admit what the default bound rejects.
    payload = b"\x00" * 100
    fpzip = get_compressor("fpzip")
    frames.check_declared_count(fpzip, 10_000_000, len(payload))  # no raise
    with pytest.raises(CorruptStreamError):
        frames.check_declared_count(fpzip, 1 << 40, len(payload))
    gorilla = get_compressor("gorilla")
    with pytest.raises(CorruptStreamError):
        frames.check_declared_count(gorilla, 10_000_000, len(payload))


def test_payload_driven_codec_skips_bound_but_validates_count():
    # SPDP's output size comes from its token stream; a hostile declared
    # count is caught by the post-decode element-count comparison.
    comp = get_compressor("spdp")
    arr = np.zeros(1000)
    blob = comp.compress(arr)
    _, _, offset = frames.decode_legacy_header(blob)
    hostile = (
        bytes([0xFC, 1]) + encode_uvarint(1) + encode_uvarint(1 << 60)
    ) + blob[offset:]
    with pytest.raises(CorruptStreamError):
        comp.decompress(hostile)


def test_highly_compressible_streams_still_decode():
    # The bound must never reject output our own compressors produce.
    for name in ("spdp", "fpzip", "bitshuffle-zstd", "gorilla"):
        comp = get_compressor(name)
        arr = np.zeros(1 << 17)
        out = comp.decompress(comp.compress(arr))
        np.testing.assert_array_equal(out, arr)
