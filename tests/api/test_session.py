"""Tests for the streaming compression sessions."""

import io
import os

import numpy as np
import pytest

from repro.api import (
    CompressSession,
    DecompressSession,
    compress_array,
    decompress_array,
    open_stream,
)
from repro.errors import (
    CorruptStreamError,
    StreamClosedError,
    UnsupportedDtypeError,
)


@pytest.fixture
def signal():
    rng = np.random.default_rng(7)
    return np.cumsum(rng.normal(0, 0.1, 10_000))


def test_roundtrip_in_memory(signal):
    blob = compress_array(signal, "gorilla", chunk_elements=1024)
    out = decompress_array(blob)
    np.testing.assert_array_equal(out.view(np.uint64), signal.view(np.uint64))


def test_roundtrip_multidim_shape(signal):
    cube = signal[:9990].reshape(10, 3, 333)
    blob = compress_array(cube, "chimp", chunk_elements=500)
    out = decompress_array(blob)
    assert out.shape == cube.shape
    np.testing.assert_array_equal(out.view(np.uint64), cube.view(np.uint64))


def test_incremental_writes_equal_single_write(signal):
    whole = compress_array(signal, "chimp", chunk_elements=700)
    buf = io.BytesIO()
    session = CompressSession(buf, "chimp", np.float64, chunk_elements=700)
    for start in range(0, signal.size, 333):  # misaligned with chunking
        session.write(signal[start : start + 333])
    session.close()
    assert buf.getvalue() == whole


def test_read_ranges_match_numpy_slicing(signal):
    blob = compress_array(signal, "gorilla", chunk_elements=512)
    with DecompressSession(blob) as session:
        for start, stop in [(0, 10), (500, 600), (511, 513), (1024, 4096),
                            (9_990, 10_000), (0, 10_000)]:
            window = session.read(start, stop)
            np.testing.assert_array_equal(
                window.view(np.uint64), signal[start:stop].view(np.uint64)
            )


def test_read_clamps_out_of_range(signal):
    blob = compress_array(signal[:100], "none")
    with DecompressSession(blob) as session:
        assert session.read(90, 10**9).size == 10
        assert session.read(200, 300).size == 0
        assert session.read(-5, 3).size == 3


def test_chunk_iteration_is_in_order(signal):
    blob = compress_array(signal, "chimp", chunk_elements=999)
    with DecompressSession(blob) as session:
        pieces = list(session)
        assert [p.size for p in pieces[:-1]] == [999] * (len(pieces) - 1)
        np.testing.assert_array_equal(
            np.concatenate(pieces).view(np.uint64), signal.view(np.uint64)
        )


def test_file_stream_roundtrip(tmp_path, signal):
    path = tmp_path / "sig.fcf"
    with open_stream(path, "wb", codec="gorilla", chunk_elements=2048) as out:
        out.write(signal)
    with open_stream(path) as stream:
        assert stream.codec_name == "gorilla"
        assert stream.shape == (signal.size,)
        out = stream.read_all()
    np.testing.assert_array_equal(out.view(np.uint64), signal.view(np.uint64))


def test_open_stream_write_requires_codec(tmp_path):
    with pytest.raises(ValueError, match="codec"):
        open_stream(tmp_path / "x.fcf", "wb")
    with pytest.raises(ValueError, match="mode"):
        open_stream(tmp_path / "x.fcf", "ab", codec="chimp")


def test_float32_stream(signal):
    f32 = signal.astype(np.float32)
    blob = compress_array(f32, "bitshuffle-lz4", chunk_elements=1000)
    out = decompress_array(blob)
    assert out.dtype == np.float32
    np.testing.assert_array_equal(out.view(np.uint32), f32.view(np.uint32))


def test_float32_through_double_only_codec(signal):
    f32 = signal[:777].astype(np.float32)
    blob = compress_array(f32, "pfpc", chunk_elements=100)  # odd tails
    out = decompress_array(blob)
    assert out.dtype == np.float32
    np.testing.assert_array_equal(out.view(np.uint32), f32.view(np.uint32))


def test_empty_stream():
    blob = compress_array(np.empty(0), "chimp")
    with DecompressSession(blob) as session:
        assert session.n_chunks == 0
        assert session.read_all().size == 0


def test_dtype_mismatch_rejected(signal):
    buf = io.BytesIO()
    session = CompressSession(buf, "chimp", np.float64)
    with pytest.raises(UnsupportedDtypeError, match="float32"):
        session.write(signal.astype(np.float32))
    with pytest.raises(UnsupportedDtypeError):
        CompressSession(io.BytesIO(), "chimp", np.int64)


def test_write_after_close_rejected(signal):
    buf = io.BytesIO()
    session = CompressSession(buf, "chimp", np.float64)
    session.write(signal[:10])
    session.close()
    with pytest.raises(StreamClosedError):
        session.write(signal[:10])


def test_shape_must_match_written_elements(signal):
    buf = io.BytesIO()
    session = CompressSession(buf, "chimp", np.float64, shape=(3, 5))
    session.write(signal[:14])
    with pytest.raises(ValueError, match="declares"):
        session.close()


def test_aborted_write_leaves_unreadable_stream(tmp_path, signal):
    path = tmp_path / "broken.fcf"
    with pytest.raises(RuntimeError, match="simulated"):
        with open_stream(path, "wb", codec="chimp") as out:
            out.write(signal[:100])
            raise RuntimeError("simulated producer crash")
    with pytest.raises(CorruptStreamError):
        open_stream(path)


def test_bytes_read_accounting(signal):
    blob = compress_array(signal, "gorilla", chunk_elements=1024)
    with DecompressSession(blob) as session:
        assert session.bytes_read == 0
        session.read(0, 1)  # one chunk only
        assert session.bytes_read == session.frames[0].compressed_bytes
        session.read()
        assert session.bytes_read >= session.compressed_bytes


def test_parallel_decode_matches_serial(signal):
    blob = compress_array(signal, "chimp", chunk_elements=512)
    serial = decompress_array(blob)
    parallel = decompress_array(blob, jobs=3)
    np.testing.assert_array_equal(
        serial.view(np.uint64), parallel.view(np.uint64)
    )


def test_compressor_instance_as_codec(signal):
    from repro.compressors import get_compressor

    comp = get_compressor("gorilla")
    blob = compress_array(signal[:500], comp)
    assert decompress_array(blob).size == 500


def test_unknown_codec_name_lists_known():
    with pytest.raises(KeyError, match="known"):
        compress_array(np.zeros(4), "gzip")


def test_write_snapshots_caller_buffer():
    # The TSDB ingest pattern: one reused scratch buffer per arriving
    # batch.  Deferred (batched) compression must not alias it.
    scratch = np.empty(4096)
    buf = io.BytesIO()
    with CompressSession(buf, "none", np.float64, chunk_elements=4096) as s:
        for i in range(8):
            scratch[:] = float(i)
            s.write(scratch)
    out = decompress_array(buf.getvalue())
    expected = np.repeat(np.arange(8.0), 4096)
    np.testing.assert_array_equal(out, expected)


def test_shape_mismatch_on_owned_file_still_closes_it(tmp_path):
    session = open_stream(
        tmp_path / "short.fcf", "wb", codec="none", shape=(100,)
    )
    with pytest.raises(ValueError, match="declares"):
        with session:
            session.write(np.zeros(50))
    assert session._fh.closed
    with pytest.raises(CorruptStreamError):
        open_stream(tmp_path / "short.fcf")


def test_raw_codec_chunks_are_writable():
    blob = compress_array(np.zeros(100), "none", chunk_elements=40)
    with DecompressSession(blob) as session:
        for chunk in session:
            chunk += 1.0  # must not raise "read-only"
        window = session.read(10, 20)
        window *= 2.0


def test_unpicklable_codec_falls_back_to_serial():
    from repro.compressors import get_compressor

    comp = get_compressor("gorilla")
    comp.diary = open(os.devnull, "w")  # unpicklable instance state
    arr = np.cumsum(np.random.default_rng(0).normal(0, 1, 4000))
    try:
        blob = compress_array(arr, comp, chunk_elements=512, jobs=2)
    finally:
        comp.diary.close()
    np.testing.assert_array_equal(
        decompress_array(blob).view(np.uint64), arr.view(np.uint64)
    )
