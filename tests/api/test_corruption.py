"""Corrupt-stream fuzz tests (satellite of the streaming redesign).

For every registered codec, truncate valid streams at each
header/payload boundary and flip bytes across the FCF chunk index.
Whatever the damage, the public decode surface must either reproduce
the original bits exactly (possible only when the damaged bytes were
redundant) or raise :class:`~repro.errors.CorruptStreamError` — never
``IndexError``/``ValueError``/``MemoryError`` or any other leak from a
decoder's internals.
"""

import numpy as np
import pytest

from repro.api import FOOTER_BYTES, compress_array, decompress_array
from repro.api.frames import decode_legacy_header
from repro.compressors import compressor_names, get_compressor
from repro.errors import CorruptStreamError

ALL_METHODS = compressor_names()


def _sample(comp, n=257):
    rng = np.random.default_rng(42)
    dtype = np.float64 if "D" in comp.info.precisions else np.float32
    arr = np.cumsum(rng.normal(0, 1, n)).astype(dtype)
    arr[7] = np.nan
    arr[11] = np.inf
    return arr


def _expect_corrupt_or_exact(decode, original):
    """The only acceptable outcomes: CorruptStreamError or bit-exactness."""
    try:
        out = decode()
    except CorruptStreamError:
        return
    except BaseException as exc:  # noqa: BLE001 - the point of the test
        pytest.fail(
            f"leaked {type(exc).__name__} instead of CorruptStreamError: {exc}"
        )
    uint = np.uint64 if original.dtype.itemsize == 8 else np.uint32
    assert out.size == original.size and np.array_equal(
        np.asarray(out).ravel().view(uint), original.view(uint)
    ), "damaged stream decoded to different data without an error"


@pytest.mark.parametrize("name", ALL_METHODS)
def test_legacy_stream_truncation(name):
    comp = get_compressor(name)
    arr = _sample(comp)
    blob = comp.compress(arr)
    _, _, header_end = decode_legacy_header(blob)
    payload_len = len(blob) - header_end
    # Every header boundary, plus a spread of payload cut points.  The
    # legacy format carries no checksum, so cuts inside the last few
    # payload bytes of an arithmetic-coded tail are indistinguishable
    # from final-flush padding — that detection gap is exactly what the
    # FCF per-frame CRC closes (see test_fcf_stream_truncation, which
    # covers every region including the very last byte).
    tail_limit = max(header_end, len(blob) - 16)
    cuts = set(range(header_end + 1))  # every header boundary
    cuts.update(
        min(header_end + (payload_len * f) // 8, tail_limit) for f in range(9)
    )
    for cut in sorted(cuts):
        _expect_corrupt_or_exact(
            lambda cut=cut: comp.decompress(blob[:cut]), arr
        )


@pytest.mark.parametrize("name", ALL_METHODS)
def test_fcf_stream_truncation(name):
    comp = get_compressor(name)
    arr = _sample(comp)
    blob = compress_array(arr, comp, chunk_elements=64)
    # Any strict prefix loses the footer, so every truncation must fail
    # loudly; sample boundaries across header, frames, index, footer.
    cuts = {0, 1, 4, 5, 6, len(blob) - FOOTER_BYTES, len(blob) - 1}
    cuts.update((len(blob) * f) // 16 for f in range(16))
    for cut in sorted(cuts):
        with pytest.raises(CorruptStreamError):
            decompress_array(blob[:cut])


@pytest.mark.parametrize("name", ALL_METHODS)
def test_fcf_index_byte_flips(name):
    comp = get_compressor(name)
    arr = _sample(comp)
    blob = compress_array(arr, comp, chunk_elements=64)
    index_len = int.from_bytes(blob[-FOOTER_BYTES:][:8], "little")
    index_start = len(blob) - FOOTER_BYTES - index_len
    for pos in range(index_start, len(blob)):
        damaged = bytearray(blob)
        damaged[pos] ^= 0xFF
        _expect_corrupt_or_exact(
            lambda d=bytes(damaged): decompress_array(d).ravel(), arr
        )


@pytest.mark.parametrize("name", ALL_METHODS)
def test_fcf_payload_byte_flips(name):
    """Bit rot inside compressed frames must also obey the error contract.

    The per-frame CRC makes this cheap and airtight: a flipped payload
    byte fails the checksum before the codec ever runs.
    """
    comp = get_compressor(name)
    arr = _sample(comp)
    blob = compress_array(arr, comp, chunk_elements=64)
    index_len = int.from_bytes(blob[-FOOTER_BYTES:][:8], "little")
    index_start = len(blob) - FOOTER_BYTES - index_len
    span = max(1, (index_start - 16) // 24)
    for pos in range(16, index_start, span):
        damaged = bytearray(blob)
        damaged[pos] ^= 0x55
        _expect_corrupt_or_exact(
            lambda d=bytes(damaged): decompress_array(d).ravel(), arr
        )
