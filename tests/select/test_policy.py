"""Selection policies: heuristic rule table, measured tie-breaking,
learned nearest-neighbour lookup, and the picklability the parallel
write path depends on."""

import pickle

import numpy as np
import pytest

from repro.errors import SelectionError
from repro.select.features import FEATURE_ORDER
from repro.select.policy import (
    DEFAULT_CANDIDATES,
    HeuristicPolicy,
    LearnedPolicy,
    MeasuredPolicy,
    SelectionPolicy,
    pick_smallest,
    resolve_policy,
)


def _repeat_chunk(n=4096):
    # A handful of distinct values, heavily repeated (sensor/DB regime).
    return np.tile(np.array([1.5, 2.25, 3.0, 21.125]), n // 4)


def _decimal_chunk(n=4096):
    # Unique-valued but decimal-quantized (money-column regime).
    rng = np.random.default_rng(3)
    return np.round(rng.uniform(800.0, 600_000.0, n), 2)


def _smooth_chunk(n=4096):
    return np.sin(np.linspace(0.0, 30.0, n)) * np.linspace(1.0, 2.0, n)


def _noise_chunk(n=4096):
    return np.random.default_rng(9).normal(0.0, 1.0, n)


# ----------------------------------------------------------------------
# Heuristic
# ----------------------------------------------------------------------
def test_heuristic_routes_each_regime():
    policy = HeuristicPolicy()
    assert policy.select(_repeat_chunk()) == policy.repeat_codec
    assert policy.select(_decimal_chunk()) == policy.decimal_codec
    assert policy.select(_smooth_chunk()) == policy.smooth_codec
    assert policy.select(_noise_chunk()) == policy.default_codec


def test_heuristic_decisions_carry_reasons_and_features():
    decision = HeuristicPolicy().decide(_smooth_chunk())
    assert decision.codec == "fpzip"
    assert "autocorr" in decision.reason
    assert decision.features.lag1_autocorr > 0.8


def test_heuristic_candidates_deduplicate_roles():
    policy = HeuristicPolicy(repeat_codec="gorilla", default_codec="gorilla")
    assert policy.candidates.count("gorilla") == 1
    assert set(policy.candidates) == {"gorilla", "buff", "fpzip"}


def test_heuristic_decimal_with_repeats_prefers_repeat_codec():
    # Decimal-quantized but repeat-heavy (sensor ticks, key columns):
    # the decimal rule's uniqueness split routes to the entropy coder,
    # not BUFF — only near-fully-unique decimal data is BUFF's regime.
    chunk = np.tile(np.array([1.25, 2.5]), 2048)
    policy = HeuristicPolicy()
    assert policy.select(chunk) == policy.repeat_codec


def test_heuristic_large_magnitude_noise_is_not_decimal():
    # Continuous data scaled to ~1e5 must not be misread as quantized
    # (the decimal probe's tolerance is capped below the quantization
    # step, not scaled with magnitude alone).
    chunk = np.random.default_rng(0).normal(0.0, 1.0, 8192) * 1e5
    policy = HeuristicPolicy()
    decision = policy.decide(chunk)
    assert decision.features.decimal_digits == -1
    assert decision.codec == policy.default_codec


# ----------------------------------------------------------------------
# Measured
# ----------------------------------------------------------------------
def test_pick_smallest_prefers_smaller_output():
    assert pick_smallest(("a", "b"), {"a": 100, "b": 50}) == "b"


def test_pick_smallest_breaks_ties_by_candidate_order():
    assert pick_smallest(("a", "b"), {"a": 64, "b": 64}) == "a"
    assert pick_smallest(("b", "a"), {"a": 64, "b": 64}) == "b"


def test_pick_smallest_rejects_missing_sizes():
    with pytest.raises(SelectionError):
        pick_smallest(("a", "b"), {"a": 10})
    with pytest.raises(SelectionError):
        pick_smallest((), {})


def test_measured_policy_is_deterministic():
    policy = MeasuredPolicy(
        candidates=("gorilla", "chimp", "bitshuffle-zstd"), sample_elements=512
    )
    chunk = _smooth_chunk()
    first = policy.select(chunk)
    assert first in policy.candidates
    assert all(policy.select(chunk) == first for _ in range(3))


def test_measured_trial_sizes_cover_every_candidate():
    policy = MeasuredPolicy(
        candidates=("gorilla", "none"), sample_elements=256
    )
    sizes = policy.trial_sizes(_smooth_chunk())
    assert set(sizes) == {"gorilla", "none"}
    assert sizes["none"] == 256 * 8  # identity codec: raw bytes


def test_measured_policy_validates_configuration():
    with pytest.raises(SelectionError):
        MeasuredPolicy(candidates=())
    with pytest.raises(SelectionError):
        MeasuredPolicy(sample_elements=0)


# ----------------------------------------------------------------------
# Learned
# ----------------------------------------------------------------------
def _vector(**overrides):
    base = dict.fromkeys(FEATURE_ORDER, 0.0)
    base.update(overrides)
    return tuple(float(base[name]) for name in FEATURE_ORDER)


def test_learned_policy_nearest_row_wins():
    rows = (
        ("fpzip", _vector(lag1_autocorr=1.0, frac_unique=1.0)),
        ("dzip", _vector(lag1_autocorr=0.0, frac_unique=0.01)),
    )
    policy = LearnedPolicy(rows=rows)
    assert policy.select(_smooth_chunk()) == "fpzip"
    assert policy.select(_repeat_chunk()) == "dzip"
    assert policy.candidates == ("dzip", "fpzip")


def test_learned_policy_requires_rows_and_valid_width():
    with pytest.raises(SelectionError):
        LearnedPolicy(rows=())
    with pytest.raises(SelectionError):
        LearnedPolicy(rows=(("fpzip", (1.0, 2.0)),))


# ----------------------------------------------------------------------
# resolve_policy + picklability
# ----------------------------------------------------------------------
def test_resolve_policy_by_name_and_instance():
    assert isinstance(resolve_policy("heuristic"), HeuristicPolicy)
    measured = resolve_policy("measured", sample_elements=128)
    assert isinstance(measured, MeasuredPolicy)
    assert measured.sample_elements == 128
    assert resolve_policy(measured) is measured


def test_resolve_policy_rejects_unknown_and_bad_options():
    with pytest.raises(SelectionError):
        resolve_policy("alphabetical")
    with pytest.raises(SelectionError):
        resolve_policy(HeuristicPolicy(), sample_elements=1)


def test_policies_are_picklable():
    rows = (("fpzip", _vector(lag1_autocorr=1.0)),)
    for policy in (
        HeuristicPolicy(),
        MeasuredPolicy(sample_elements=64),
        LearnedPolicy(rows=rows),
    ):
        clone = pickle.loads(pickle.dumps(policy))
        assert isinstance(clone, SelectionPolicy)
        assert clone.candidates == policy.candidates
        chunk = _smooth_chunk(512)
        assert clone.select(chunk) == policy.select(chunk)


def test_default_candidates_are_registered_methods():
    from repro.compressors import compressor_names

    assert set(DEFAULT_CANDIDATES) <= set(compressor_names())
