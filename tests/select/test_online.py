"""Online bandit policy: determinism, convergence, and accounting.

The determinism contract is the acceptance bar: same seed + same
(choose, observe) sequence → the exact same arm sequence, replayed run
after run.  Beyond that we pin the bucket labels to the heuristic's
split points, the pull/observation split (pulls charged at choose time,
observations only when outcomes land), and that the bandit converges to
the clearly-best arm once rewards separate.
"""

import numpy as np
import pytest

from repro.errors import SelectionError
from repro.select.features import extract_features
from repro.select.online import (
    PRODUCTION_LATENCY_WEIGHT,
    OnlinePolicy,
    OnlineSelectorHub,
    feature_bucket,
)
from repro.select.policy import HeuristicPolicy


ARMS = ("bitshuffle-zstd", "buff", "fpzip", "gorilla")


def _chunks(seed=0, count=12):
    rng = np.random.default_rng(seed)
    out = []
    for index in range(count):
        if index % 3 == 0:
            base = np.round(rng.normal(20.0, 5.0, 512), 2)  # decimal
        elif index % 3 == 1:
            base = np.cumsum(rng.normal(0.0, 0.01, 512)) + 100.0  # smooth
        else:
            base = rng.random(512)  # rough/unique
        out.append(base.astype(np.float64))
    return out


class TestFeatureBucket:
    def test_labels_three_axes(self):
        rough = np.random.default_rng(0).random(2048)
        bucket = feature_bucket(extract_features(rough))
        dec, uniq, smooth = bucket.split(":")
        assert dec in {"dec", "cont"}
        assert uniq in {"rep", "mix", "uniq"}
        assert smooth in {"smooth", "rough"}

    def test_constant_is_repetitive(self):
        features = extract_features(np.zeros(1024))
        assert feature_bucket(features).split(":")[1] == "rep"

    def test_random_walk_is_smooth(self):
        walk = np.cumsum(np.random.default_rng(1).normal(0, 0.01, 4096))
        assert feature_bucket(extract_features(walk)).endswith("smooth")


class TestDeterminism:
    def test_same_seed_same_arm_sequence(self):
        def run():
            policy = OnlinePolicy(candidates=ARMS, seed=7)
            sequence = []
            for chunk in _chunks():
                decision = policy.decide(chunk)
                sequence.append(decision.codec)
                bucket = feature_bucket(decision.features)
                policy.observe(
                    bucket, decision.codec, chunk.nbytes, chunk.nbytes // 2
                )
            return sequence, policy.snapshot()

        first_seq, first_snap = run()
        second_seq, second_snap = run()
        assert first_seq == second_seq
        assert first_snap == second_snap

    def test_different_seeds_explore_differently(self):
        # The seeded shuffle must actually shuffle: across a handful of
        # seeds the first-pass arm orders cannot all coincide.
        orders = set()
        for seed in range(8):
            policy = OnlinePolicy(candidates=ARMS, seed=seed)
            orders.add(
                tuple(policy.decide(chunk).codec for chunk in _chunks()[:4])
            )
        assert len(orders) > 1

    def test_hub_tenant_seeds_stable_and_independent(self):
        chunk = _chunks()[0]

        def arm_for(hub, tenant):
            return hub.decide(tenant, chunk)

        a1 = arm_for(OnlineSelectorHub(seed=3, candidates=ARMS), "acme")
        a2 = arm_for(OnlineSelectorHub(seed=3, candidates=ARMS), "acme")
        assert a1 == a2
        # Adding another tenant first must not perturb acme's sequence.
        hub = OnlineSelectorHub(seed=3, candidates=ARMS)
        hub.decide("other", chunk)
        assert arm_for(hub, "acme") == a1


class TestBandit:
    def test_first_pass_covers_every_arm(self):
        policy = OnlinePolicy(candidates=ARMS, seed=0)
        chosen = {policy.choose("b") for _ in ARMS}
        assert chosen == set(ARMS)

    def test_pulls_charged_at_choose_observations_at_observe(self):
        policy = OnlinePolicy(candidates=ARMS, seed=0)
        arm = policy.choose("b")
        stats = policy.snapshot()["buckets"]["b"]["arms"][arm]
        assert stats == {"pulls": 1, "observations": 0, "mean_reward": 0.0}
        policy.observe("b", arm, 1000, 250)
        stats = policy.snapshot()["buckets"]["b"]["arms"][arm]
        assert stats["observations"] == 1
        assert stats["pulls"] == 1
        assert stats["mean_reward"] == pytest.approx(0.75)

    def test_converges_to_best_arm(self):
        policy = OnlinePolicy(candidates=ARMS, seed=0, exploration=0.05)
        rewards = {arm: 0.9 if arm == "buff" else 0.2 for arm in ARMS}
        for _ in range(200):
            arm = policy.choose("b")
            out = int(1000 * (1.0 - rewards[arm]))
            policy.observe("b", arm, 1000, out)
        tail = [policy.choose("b") for _ in range(20)]
        for arm in tail:  # choose() charged pulls; settle them
            policy.observe("b", arm, 1000, int(1000 * (1 - rewards[arm])))
        assert tail.count("buff") >= 18

    def test_buckets_learn_independently(self):
        policy = OnlinePolicy(candidates=ARMS, seed=0, exploration=0.05)
        best = {"x": "fpzip", "y": "gorilla"}
        for _ in range(150):
            for bucket, winner in best.items():
                arm = policy.choose(bucket)
                out = 100 if arm == winner else 900
                policy.observe(bucket, arm, 1000, out)
        for bucket, winner in best.items():
            assert policy.choose(bucket) == winner

    def test_reward_clamps_and_latency_toll(self):
        policy = OnlinePolicy(candidates=ARMS, latency_weight=0.0)
        assert policy.reward(1000, 250, 0.0) == pytest.approx(0.75)
        assert policy.reward(1000, 2000, 0.0) == 0.0  # expansion clamps
        assert policy.reward(0, 100, 0.0) == 0.0
        tolled = OnlinePolicy(candidates=ARMS, latency_weight=0.1)
        assert tolled.reward(1 << 20, 1 << 18, 1.0) == pytest.approx(0.65)

    def test_observe_unknown_arm_dropped(self):
        policy = OnlinePolicy(candidates=ARMS, seed=0)
        policy.observe("b", "dzip", 1000, 100)
        assert "dzip" not in policy.snapshot()["buckets"]["b"]["arms"]

    def test_default_candidates_are_heuristic_arms(self):
        assert OnlinePolicy().candidates == HeuristicPolicy().candidates

    def test_invalid_configs_typed(self):
        with pytest.raises(SelectionError):
            OnlinePolicy(decay=0.0)
        # Falsy candidates fall back to the heuristic arms, not an error.
        assert OnlinePolicy(candidates=()).candidates == (
            HeuristicPolicy().candidates
        )


class TestHub:
    def test_snapshot_shape(self):
        hub = OnlineSelectorHub(seed=11, candidates=ARMS)
        chunk = _chunks()[0]
        codec, bucket = hub.decide("acme", chunk)
        hub.observe("acme", bucket, codec, chunk.nbytes, chunk.nbytes // 4)
        snap = hub.snapshot()
        assert snap["seed"] == 11
        arm_row = snap["tenants"]["acme"]["buckets"][bucket]["arms"][codec]
        assert arm_row["pulls"] == 1
        assert arm_row["observations"] == 1

    def test_anonymous_tenant_uses_default_key(self):
        hub = OnlineSelectorHub(candidates=ARMS)
        hub.decide(None, _chunks()[0])
        assert OnlineSelectorHub.DEFAULT_TENANT in hub.snapshot()["tenants"]


class TestProductionLatencyWeight:
    """The serving hub's reward is latency-aware by default (pin)."""

    def test_constant_pinned(self):
        assert PRODUCTION_LATENCY_WEIGHT == 2.0

    def test_offline_policy_default_stays_ratio_only(self):
        # Offline/replay use constructs OnlinePolicy directly; its
        # reward must not grow a latency toll behind sweeps' backs.
        assert OnlinePolicy().latency_weight == 0.0

    def test_hub_observations_pay_the_latency_toll(self):
        hub = OnlineSelectorHub(candidates=ARMS)
        # 1 MiB halved in 0.1 s: saving 0.5, toll 2.0 * 0.1 = 0.2.
        hub.observe(None, "b", "gorilla", 1 << 20, 1 << 19, seconds=0.1)
        snap = hub.snapshot()["tenants"][OnlineSelectorHub.DEFAULT_TENANT]
        row = snap["buckets"]["b"]["arms"]["gorilla"]
        assert row["mean_reward"] == pytest.approx(0.3)

    def test_hub_opt_out_restores_ratio_only_reward(self):
        hub = OnlineSelectorHub(candidates=ARMS, latency_weight=0.0)
        hub.observe(None, "b", "gorilla", 1 << 20, 1 << 19, seconds=0.1)
        snap = hub.snapshot()["tenants"][OnlineSelectorHub.DEFAULT_TENANT]
        row = snap["buckets"]["b"]["arms"]["gorilla"]
        assert row["mean_reward"] == pytest.approx(0.5)

    def test_slow_tight_arm_loses_to_fast_near_tight_arm(self):
        # Under the production weight a codec that squeezes 2 points
        # more but runs 10x slower must *lose*: 0.80 @ 0.05 s/MiB
        # nets 0.70, 0.78 @ 0.005 s/MiB nets 0.77.
        policy = OnlinePolicy(
            candidates=ARMS, latency_weight=PRODUCTION_LATENCY_WEIGHT
        )
        mib = 1 << 20
        slow_tight = policy.reward(mib, int(mib * 0.20), 0.05)
        fast_loose = policy.reward(mib, int(mib * 0.22), 0.005)
        assert slow_tight == pytest.approx(0.70)
        assert fast_loose == pytest.approx(0.77)
        assert fast_loose > slow_tight
