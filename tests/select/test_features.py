"""Feature extraction: deterministic, cheap, and structurally meaningful."""

import dataclasses

import numpy as np
import pytest

from repro.errors import UnsupportedDtypeError
from repro.select.features import (
    FEATURE_ORDER,
    ChunkFeatures,
    extract_features,
)


def _smooth(n=4096):
    return np.sin(np.linspace(0.0, 25.0, n))


def _noise(n=4096, seed=7):
    return np.random.default_rng(seed).normal(0.0, 1.0, n)


def test_extraction_is_deterministic():
    chunk = _noise()
    assert extract_features(chunk) == extract_features(chunk)
    assert extract_features(chunk) == extract_features(chunk.copy())


def test_feature_order_matches_dataclass_fields():
    names = {f.name for f in dataclasses.fields(ChunkFeatures)}
    assert set(FEATURE_ORDER) <= names
    vector = extract_features(_smooth()).numeric_vector()
    assert len(vector) == len(FEATURE_ORDER)
    assert all(isinstance(value, float) for value in vector)


def test_empty_chunk_yields_neutral_features():
    features = extract_features(np.empty(0, dtype=np.float64))
    assert features.n_elements == 0
    assert features.sampled == 0
    assert features.decimal_digits == -1


def test_single_element_chunk():
    features = extract_features(np.array([3.25]))
    assert features.n_elements == 1
    assert features.xor_significant_fraction == 0.0


def test_constant_chunk_is_repeat_heavy():
    features = extract_features(np.full(2048, 1.5))
    assert features.frac_unique < 0.01
    assert features.delta_byte_entropy == 0.0


def test_smooth_chunk_has_high_autocorrelation():
    features = extract_features(_smooth())
    assert features.lag1_autocorr > 0.95


def test_noise_chunk_has_low_autocorrelation():
    features = extract_features(_noise())
    assert abs(features.lag1_autocorr) < 0.2


def test_decimal_quantization_detected():
    rng = np.random.default_rng(11)
    money = np.round(rng.uniform(800.0, 60000.0, 4096), 2)
    features = extract_features(money)
    assert features.decimal_digits == 2
    assert extract_features(np.round(money)).decimal_digits == 0


def test_unquantized_noise_has_no_decimal_digits():
    assert extract_features(_noise()).decimal_digits == -1


def test_sample_cap_is_respected():
    chunk = _noise(50_000)
    features = extract_features(chunk, sample_elements=1024)
    assert features.sampled == 1024
    assert features.n_elements == 50_000
    # The cap changes which prefix is measured, deterministically.
    assert features == extract_features(chunk, sample_elements=1024)


def test_float32_chunks_supported():
    features = extract_features(_smooth().astype(np.float32))
    assert features.lag1_autocorr > 0.95
    assert features.exponent_count >= 1


def test_nan_and_inf_do_not_poison_features():
    chunk = _noise()
    chunk[3] = np.nan
    chunk[17] = np.inf
    features = extract_features(chunk)
    assert np.isfinite(features.lag1_autocorr)
    assert features.decimal_digits == -1


def test_integer_dtype_rejected():
    with pytest.raises(UnsupportedDtypeError):
        extract_features(np.arange(16))
