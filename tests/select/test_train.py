"""Training the learned policy from the suite cache and ResultSets."""

from types import SimpleNamespace

import pytest

from repro.core.cache import CellCache
from repro.core.results import Measurement, ResultSet
from repro.errors import SelectionError
from repro.select import (
    LearnedPolicy,
    build_table,
    load_policy,
    load_table,
    save_table,
    table_from_results,
)
from repro.select.features import FEATURE_ORDER


def _measurement(method, dataset, ratio, ok=True):
    return Measurement(
        method=method,
        dataset=dataset,
        domain="TS",
        precision="D",
        ok=ok,
        compression_ratio=ratio,
    )


def _seed_cache(tmp_path):
    cache = CellCache(root=tmp_path)
    cells = [
        ("gorilla", "citytemp", 2.0),
        ("chimp", "citytemp", 3.5),
        ("gorilla", "tpcH-order", 1.9),
        ("chimp", "tpcH-order", 1.2),
    ]
    for method, dataset, ratio in cells:
        task = SimpleNamespace(
            method=method, dataset=dataset, target_elements=512, seed=0
        )
        cache.put(task, _measurement(method, dataset, ratio))
    return cache


def test_build_table_picks_best_cr_per_dataset(tmp_path):
    _seed_cache(tmp_path)
    rows = build_table(root=tmp_path)
    winners = {row.dataset: row.winner for row in rows}
    assert winners == {"citytemp": "chimp", "tpcH-order": "gorilla"}
    for row in rows:
        assert set(FEATURE_ORDER) <= set(row.features)


def test_build_table_respects_candidate_restriction(tmp_path):
    _seed_cache(tmp_path)
    rows = build_table(root=tmp_path, candidates=("gorilla",))
    assert {row.winner for row in rows} == {"gorilla"}


def test_build_table_on_empty_cache_raises(tmp_path):
    with pytest.raises(SelectionError):
        build_table(root=tmp_path)


def test_table_round_trips_through_json(tmp_path):
    _seed_cache(tmp_path)
    rows = build_table(root=tmp_path)
    path = save_table(rows, tmp_path / "table.json")
    assert load_table(path) == rows
    policy = load_policy(path)
    assert isinstance(policy, LearnedPolicy)
    assert set(policy.candidates) == {"chimp", "gorilla"}


def test_load_table_rejects_missing_and_malformed(tmp_path):
    with pytest.raises(SelectionError):
        load_table(tmp_path / "nope.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(SelectionError):
        load_table(bad)
    drifted = tmp_path / "drifted.json"
    drifted.write_text('{"schema": 99, "rows": []}')
    with pytest.raises(SelectionError):
        load_table(drifted)


def test_load_table_rejects_feature_order_drift(tmp_path):
    _seed_cache(tmp_path)
    path = save_table(build_table(root=tmp_path), tmp_path / "table.json")
    import json

    payload = json.loads(path.read_text())
    payload["feature_order"] = ["something_else"]
    path.write_text(json.dumps(payload))
    with pytest.raises(SelectionError):
        load_table(path)


def test_table_from_results():
    results = ResultSet()
    results.add(_measurement("gorilla", "citytemp", 2.0))
    results.add(_measurement("chimp", "citytemp", 3.0))
    results.add(_measurement("fpzip", "citytemp", 9.0, ok=False))  # ignored
    rows = table_from_results(results, target_elements=512)
    assert [row.winner for row in rows] == ["chimp"]
    assert rows[0].winner_cr == 3.0


def test_table_from_results_with_nothing_usable():
    results = ResultSet()
    results.add(_measurement("gorilla", "citytemp", 2.0, ok=False))
    with pytest.raises(SelectionError):
        table_from_results(results, target_elements=512)
