"""Shared fixtures: representative float arrays for codec testing."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(20240617)


def _smooth_3d(dtype: np.dtype) -> np.ndarray:
    x, y, z = np.meshgrid(
        np.linspace(0.0, 4.0, 18),
        np.linspace(0.0, 4.0, 18),
        np.linspace(0.0, 4.0, 18),
        indexing="ij",
    )
    return (np.sin(x) * np.cos(y) + 0.1 * z).astype(dtype)


def array_cases(rng: np.random.Generator) -> dict[str, np.ndarray]:
    """The canonical set of arrays every compressor must round-trip."""
    return {
        "smooth3d_f32": _smooth_3d(np.float32),
        "smooth3d_f64": _smooth_3d(np.float64),
        "noisy_f64": rng.normal(0.0, 1.0, 3000).astype(np.float64),
        "noisy_f32": rng.normal(0.0, 1.0, 3000).astype(np.float32),
        "decimals_f64": np.round(rng.normal(50.0, 10.0, 2500), 2),
        "repeats_f64": np.repeat(rng.normal(0.0, 1.0, 40), 60),
        "table_f64": np.round(rng.normal(10.0, 3.0, (300, 7)), 2),
        "specials_f64": np.array(
            [0.0, -0.0, np.nan, np.inf, -np.inf, 5e-324, 1e308, -1e-308] * 8
        ),
        "single_f64": np.array([3.141592653589793]),
        "pair_f32": np.array([1.5, -2.25], dtype=np.float32),
        "empty_f64": np.array([], dtype=np.float64),
        "denormals_f32": (
            rng.normal(0, 1, 500).astype(np.float32) * np.float32(1e-40)
        ),
    }


@pytest.fixture(scope="session")
def cases(rng: np.random.Generator) -> dict[str, np.ndarray]:
    return array_cases(rng)


def assert_bit_exact(original: np.ndarray, restored: np.ndarray) -> None:
    """Bit-level equality including NaN payloads and signed zeros."""
    assert restored.shape == original.shape
    assert restored.dtype == original.dtype
    uint = np.uint32 if original.dtype == np.float32 else np.uint64
    np.testing.assert_array_equal(original.view(uint), restored.view(uint))
