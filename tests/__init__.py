"""Test package."""
