"""Consistent-hash ring properties the cluster is built on.

Placement must be deterministic across processes (it is part of the
wire contract — every client and node computes it independently from
the topology document), balanced within bounds at 100+ virtual nodes,
and minimally disturbed by membership changes: a join or leave may
remap only the arcs the changed node owns, an expected ``1/N`` key
fraction.
"""

import json
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro.cluster import DEFAULT_VNODES, HashRing, stable_hash
from repro.errors import ClusterError

pytestmark = pytest.mark.cluster

KEYS = [f"tenant-{k % 7}/stream/{k}" for k in range(2000)]


def _ring(n, vnodes=DEFAULT_VNODES):
    return HashRing([f"node-{i}" for i in range(n)], vnodes=vnodes)


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_stable_hash_is_salt_free_and_typed():
    # A pinned value: if this moves, every deployed placement moves.
    assert stable_hash("node-0#0") == 0x23AD9A13F8EFD4D9
    assert stable_hash("key") == stable_hash(b"key")


def test_placement_identical_across_processes():
    """A fresh interpreter with a different hash salt places identically.

    This is the property Python's builtin ``hash`` would break: the
    ring must be a pure function of the topology document, because
    clients and nodes compute placements independently.
    """
    local = {key: _ring(5).replicas(key, 2) for key in KEYS[:200]}
    script = (
        "import json, sys\n"
        "from repro.cluster import HashRing\n"
        "ring = HashRing([f'node-{i}' for i in range(5)])\n"
        "keys = json.load(sys.stdin)\n"
        "json.dump({k: ring.replicas(k, 2) for k in keys}, sys.stdout)\n"
    )
    src = Path(__file__).resolve().parents[2] / "src"
    out = subprocess.run(
        [sys.executable, "-c", script],
        input=json.dumps(KEYS[:200]),
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": str(src), "PYTHONHASHSEED": "12345"},
    )
    assert json.loads(out.stdout) == local


def test_replicas_are_distinct_ordered_prefixes():
    ring = _ring(5)
    for key in KEYS[:100]:
        three = ring.replicas(key, 3)
        assert len(set(three)) == 3
        assert ring.replicas(key, 1) == three[:1]
        assert ring.replicas(key, 2) == three[:2]
        assert ring.primary(key) == three[0]


def test_replica_count_clamps_to_ring_size():
    ring = _ring(2)
    assert sorted(ring.replicas("any", 3)) == ["node-0", "node-1"]


# ----------------------------------------------------------------------
# Balance
# ----------------------------------------------------------------------
@pytest.mark.parametrize("nodes", [3, 5, 8])
def test_load_balance_within_bounds(nodes):
    ring = _ring(nodes, vnodes=128)
    counts = Counter(ring.primary(key) for key in KEYS)
    assert len(counts) == nodes  # every node owns some keys
    mean = len(KEYS) / nodes
    for node, count in counts.items():
        assert 0.6 * mean <= count <= 1.5 * mean, (
            f"{node} owns {count} of {len(KEYS)} keys "
            f"({count / mean:.2f}x the mean share)"
        )


def test_few_vnodes_balance_is_worse_than_many():
    """Sanity on the vnodes knob: 128 points beat 1 point per node."""
    spread = {}
    for vnodes in (1, 128):
        ring = _ring(5, vnodes=vnodes)
        counts = Counter(ring.primary(key) for key in KEYS)
        mean = len(KEYS) / 5
        spread[vnodes] = max(
            abs(counts.get(f"node-{i}", 0) - mean) for i in range(5)
        )
    assert spread[128] < spread[1]


# ----------------------------------------------------------------------
# Minimal remapping
# ----------------------------------------------------------------------
def test_join_remaps_only_onto_the_new_node():
    before = {key: _ring(5).primary(key) for key in KEYS}
    grown = _ring(5)
    grown.add_node("node-5")
    moved = {
        key: grown.primary(key)
        for key in KEYS
        if grown.primary(key) != before[key]
    }
    # Every remapped key lands on the joiner, nowhere else.
    assert set(moved.values()) == {"node-5"}
    # Expected moved fraction is 1/(N+1); assert it stays under 2x that.
    assert 0 < len(moved) / len(KEYS) < 2 / 6


def test_leave_remaps_only_the_leavers_keys():
    ring = _ring(5)
    before = {key: ring.primary(key) for key in KEYS}
    ring.remove_node("node-3")
    after = {key: ring.primary(key) for key in KEYS}
    moved = [key for key in KEYS if after[key] != before[key]]
    assert moved, "node-3 owned keys, some must move"
    for key in moved:
        assert before[key] == "node-3"
        assert after[key] != "node-3"
    assert len(moved) / len(KEYS) < 2 / 5


def test_membership_round_trip_restores_placement():
    ring = _ring(5)
    before = {key: ring.replicas(key, 2) for key in KEYS[:200]}
    ring.remove_node("node-2")
    ring.add_node("node-2")
    assert {key: ring.replicas(key, 2) for key in KEYS[:200]} == before


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------
def test_membership_errors():
    ring = _ring(2)
    with pytest.raises(ValueError, match="already"):
        ring.add_node("node-0")
    with pytest.raises(ValueError, match="not on the ring"):
        ring.remove_node("node-9")
    with pytest.raises(ValueError, match="non-empty"):
        ring.add_node("")


def test_empty_ring_and_bad_counts():
    with pytest.raises(ClusterError, match="no nodes"):
        HashRing().primary("key")
    with pytest.raises(ValueError, match="positive"):
        _ring(2).replicas("key", 0)
    with pytest.raises(ValueError, match="vnodes"):
        HashRing(vnodes=0)
