"""Cluster scaling-curve loadgen: real nodes, verified byte-identity."""

import pytest

from repro.perf.loadgen import run_cluster_loadgen

pytestmark = pytest.mark.cluster


def test_cluster_loadgen_records_scaling_entry():
    report = run_cluster_loadgen(
        node_counts=(2,),
        connections=2,
        requests=2,
        elements=1024,
        chunk_elements=256,
        codecs=("gorilla", "auto"),
        verify=True,
    )
    assert report["replication"] == 2
    (entry,) = report["scaling"]
    assert entry["nodes"] == 2
    for cell in entry["codecs"]:
        assert cell["nodes"] == 2
        assert cell["errors"] == 0
        assert cell["completed_round_trips"] == 4
        assert cell["byte_identical_with_local"] is True
        assert cell["throughput_mbs"] > 0


def test_cluster_loadgen_rejects_bad_arguments():
    with pytest.raises(ValueError):
        run_cluster_loadgen(connections=0)
    with pytest.raises(ValueError):
        run_cluster_loadgen(node_counts=(0,))
