"""Supervisor lifecycle: spawn, observe, control, drain, restart.

A 3-node cluster of real ``fcbench serve`` processes, exercised
through every operator surface: the Python API, the FCS control
endpoint ``fcbench cluster status|drain`` dials, the state file CI
scripts read, and the topology/health frames nodes themselves serve.
"""

import json
import os
import time

import pytest

from repro.cluster import ClusterSupervisor
from repro.errors import ProtocolError, ServiceError
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.protocol import validate_topology

pytestmark = pytest.mark.cluster


@pytest.fixture(scope="module")
def cluster():
    supervisor = ClusterSupervisor(
        3, replication=2, health_interval=0.15, node_grace=1.5,
        batch_window=0.002,
    )
    supervisor.start()
    yield supervisor
    supervisor.stop()


def _control(cluster, **kwargs):
    return ServiceClient(
        cluster.control_host, cluster.control_port, pool_size=1, **kwargs
    )


def _wait_until(predicate, timeout=15.0, interval=0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def test_all_nodes_up_with_live_pids(cluster):
    status = cluster.status()
    assert [n["id"] for n in status["nodes"]] == ["node-0", "node-1", "node-2"]
    for node in status["nodes"]:
        assert node["state"] == "up"
        assert node["restarts"] == 0
        os.kill(node["pid"], 0)  # raises if the pid is gone


def test_topology_document_is_wire_valid(cluster):
    topology = cluster.topology()
    validate_topology(topology)  # raises ProtocolError on any defect
    assert topology["replication"] == 2
    assert {n["state"] for n in topology["nodes"]} == {"up"}
    # ports are distinct and stable
    ports = [n["port"] for n in topology["nodes"]]
    assert len(set(ports)) == 3


def test_state_file_is_discoverable(cluster):
    state = json.loads(cluster.state_path.read_text())
    assert state["control"]["port"] == cluster.control_port
    assert state["supervisor_pid"] == os.getpid()
    assert len(state["nodes"]) == 3
    # the bootstrap topology file nodes were started from is wire-valid
    validate_topology(json.loads(cluster.topology_path.read_text()))


def test_control_endpoint_serves_topology_health_status(cluster):
    with _control(cluster) as client:
        assert client.ping() >= 0.0
        topology = client.cluster_topology()
        assert topology == cluster.topology()
        health = client.health()
        assert health["status"] == "ok"
        assert health["role"] == "supervisor"
        status = client.cluster_control("status")
        assert [n["id"] for n in status["nodes"]] == [
            "node-0", "node-1", "node-2",
        ]


def test_nodes_serve_topology_and_health_frames(cluster):
    spec = cluster.topology()["nodes"][0]
    with ServiceClient(spec["host"], spec["port"], pool_size=1) as client:
        topology = client.cluster_topology()
        validate_topology(topology)
        assert [n["id"] for n in topology["nodes"]] == [
            "node-0", "node-1", "node-2",
        ]
        health = client.health()
        assert health["status"] == "ok"
        assert health["node_id"] == "node-0"
        assert health["pid"] == cluster.node_pid("node-0")


def test_nodes_reject_cluster_control_frames(cluster):
    spec = cluster.topology()["nodes"][0]
    with ServiceClient(spec["host"], spec["port"], pool_size=1) as client:
        with pytest.raises(ProtocolError, match="supervisor"):
            client.cluster_control("status")
        # the connection survives the typed error
        assert client.ping() >= 0.0


def test_control_drain_without_node_is_a_typed_error(cluster):
    with _control(cluster) as client:
        with pytest.raises(ServiceError, match="needs a node"):
            client.cluster_control("drain")
        with pytest.raises(ServiceError, match="no node"):
            client.cluster_control("drain", node="node-99")


def test_control_endpoint_rejects_compress_frames(cluster):
    payload = protocol.encode_json({"action": "status"})
    with _control(cluster) as client:
        with pytest.raises(ProtocolError, match="does not serve"):
            client._request(protocol.COMPRESS, payload)


def test_restart_via_control_changes_pid(cluster):
    pid_before = cluster.node_pid("node-2")
    with _control(cluster, deadline=30.0) as client:
        answer = client.cluster_control("restart", node="node-2")
    assert answer["id"] == "node-2"
    assert answer["restarts"] == 1
    assert cluster.node_pid("node-2") != pid_before
    assert _wait_until(
        lambda: {n["id"]: n["state"] for n in cluster.status()["nodes"]}[
            "node-2"
        ]
        == "up"
    )


def test_supervisor_rejects_bad_parameters():
    with pytest.raises(ValueError, match="at least one node"):
        ClusterSupervisor(0)
    with pytest.raises(ValueError, match="replication"):
        ClusterSupervisor(2, replication=0)
