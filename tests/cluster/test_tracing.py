"""The tracing acceptance run: one failover, one coherent trace tree.

A traced client compresses through a traced 3-node cluster while the
replica set's primary is SIGKILLed.  The resulting trace — retrieved
both through the client's own merge (``ClusterClient.trace``) and the
supervisor's cluster-wide merge (``fcbench cluster trace``) — must
render as ONE tree: the cluster request at the root, one errored
replica attempt, the successful retry on the next replica, and under
it the server-side admission stages, queue wait, and the
worker-process execute span.
"""

import numpy as np
import pytest

from repro.api import compress_array
from repro.cluster import ClusterClient, ClusterSupervisor
from repro.cluster.client import DEFAULT_STREAM_ID
from repro.obs import build_trace_tree

pytestmark = pytest.mark.cluster

SERVER_STAGES = {
    "server.parse",
    "server.deadline",
    "server.gate",
    "server.queue_wait",
    "server.execute",
}


def _sample(n=4096, seed=17):
    return np.cumsum(np.random.default_rng(seed).normal(0, 1, n))


@pytest.fixture(scope="module")
def traced_run():
    """Drive the scenario once; every test inspects the same trace."""
    # A long health interval + no auto-restart keeps the supervisor
    # from marking the victim down (which would *route around* it
    # instead of exercising the failover path) or resurrecting it.
    supervisor = ClusterSupervisor(
        3,
        replication=2,
        health_interval=60.0,
        auto_restart=False,
        trace=True,
        batch_window=0.002,
    )
    supervisor.start()
    client = ClusterClient(
        [(supervisor.control_host, supervisor.control_port)],
        deadline=30.0,
        trace=True,
    )
    try:
        array = _sample()
        local = compress_array(array, "gorilla")
        warm = client.compress_array(array, "gorilla")
        victim = client.nodes_for(DEFAULT_STREAM_ID)[0]
        supervisor.kill_node(victim)
        # The very next request hits the corpse, fails over, succeeds.
        failed_over = client.compress_array(array, "gorilla")
        client_spans = client.recorder.snapshot()
        merged = client.trace(limit=4096)
        supervisor_doc = supervisor.trace_document(limit=4096)
        yield {
            "local": local,
            "warm": warm,
            "failed_over": failed_over,
            "victim": victim,
            "client_spans": client_spans,
            "merged": merged,
            "supervisor_doc": supervisor_doc,
        }
    finally:
        client.close()
        supervisor.stop()


def _failover_tree(run):
    """The cluster.request tree that contains the errored replica."""
    trees = [
        root
        for root in build_trace_tree(run["merged"]["spans"])
        if root["name"] == "cluster.request"
    ]
    assert trees, "no cluster.request roots in the merged trace"
    for root in trees:
        replicas = [
            child
            for child in root["children"]
            if child["name"] == "cluster.replica"
        ]
        if any(r["status"] == "error" for r in replicas):
            return root, replicas
    raise AssertionError("no trace contains an errored replica attempt")


def test_bytes_stay_identical_through_the_traced_failover(traced_run):
    assert traced_run["warm"] == traced_run["local"]
    assert traced_run["failed_over"] == traced_run["local"]


def test_failover_renders_one_tree_with_both_attempts(traced_run):
    root, replicas = _failover_tree(traced_run)
    assert root["status"] == "ok"  # the request as a whole succeeded
    assert len(replicas) >= 2
    failed = [r for r in replicas if r["status"] == "error"]
    served = [r for r in replicas if r["status"] == "ok"]
    assert failed and served
    # The errored attempt targeted the node we killed, and started
    # before the attempt that served.
    assert any(
        r["attributes"].get("node") == traced_run["victim"] for r in failed
    )
    assert min(r["start"] for r in failed) <= min(
        r["start"] for r in served
    )


def test_server_side_stages_join_the_client_trace(traced_run):
    root, replicas = _failover_tree(traced_run)
    served = next(r for r in replicas if r["status"] == "ok")

    def _names(node, out):
        out.add(node["name"])
        for child in node["children"]:
            _names(child, out)

    names: set = set()
    _names(served, names)
    assert "client.request" in names
    assert "client.attempt" in names
    assert SERVER_STAGES <= names, names


def test_supervisor_merge_sees_the_same_trace(traced_run):
    doc = traced_run["supervisor_doc"]
    root, _ = _failover_tree(traced_run)
    supervisor_ids = {span["trace_id"] for span in doc["spans"]}
    assert root["trace_id"] in supervisor_ids
    # The killed node cannot answer; it must degrade to an error
    # entry, not break the merge.
    entry = doc["nodes"][traced_run["victim"]]
    assert "error" in entry
    live = [n for n in doc["nodes"].values() if "error" not in n]
    assert live and all(n["enabled"] for n in live)


def test_client_spans_cover_every_hop(traced_run):
    names = {span["name"] for span in traced_run["client_spans"]}
    assert {
        "cluster.request",
        "cluster.replica",
        "client.request",
        "client.attempt",
    } <= names
