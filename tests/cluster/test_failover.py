"""Fault injection: SIGKILL nodes under traffic, byte-identity intact.

The acceptance bar for the cluster: a node can be SIGKILLed between
requests or with a request in flight and no caller ever sees an error
or — worse — wrong bytes.  Failover replays on a replica, the
supervisor respawns the corpse, and every answer stays byte-identical
to the local ``compress_array``.  There is no wrong-data path: typed
data errors (corrupt stream) are *not* failed over, they are the
deterministic answer.
"""

import threading
import time

import numpy as np
import pytest

from repro.api import compress_array
from repro.cluster import ClusterClient, ClusterSupervisor
from repro.errors import ClusterError, CorruptStreamError
from repro.select import resolve_policy

pytestmark = pytest.mark.cluster

SLOW_CODEC = "bitshuffle-zstd"  # ~1 s server-side on _big(): a wide
# window to SIGKILL the serving node with the request in flight.


@pytest.fixture(scope="module")
def cluster():
    supervisor = ClusterSupervisor(
        3, replication=2, health_interval=0.15, node_grace=1.5,
        batch_window=0.002,
    )
    supervisor.start()
    yield supervisor
    supervisor.stop()


@pytest.fixture()
def client(cluster):
    with ClusterClient(
        [(cluster.control_host, cluster.control_port)], timeout=60.0
    ) as client:
        yield client


def _sample(n=4096, seed=11):
    rng = np.random.default_rng(seed)
    arr = np.cumsum(rng.normal(0, 1, n))
    arr[7] = np.nan
    return arr


def _big():
    return _sample(n=120_000, seed=3)


def _wait_all_up(cluster, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(n["state"] == "up" for n in cluster.status()["nodes"]):
            return
        time.sleep(0.1)
    raise AssertionError(
        f"cluster not healthy after {timeout}s: {cluster.status()['nodes']}"
    )


def _wait_respawned(cluster, node_id, old_pid, timeout=20.0):
    """Wait until the health loop has respawned ``node_id``.

    Polling for state alone races the health sweep (the supervisor
    reports the stale ``up`` until its next probe), so wait for the
    observable respawn: a fresh pid answering health probes.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = {n["id"]: n for n in cluster.status()["nodes"]}
        node = status[node_id]
        if node["state"] == "up" and node["pid"] != old_pid:
            return node
        time.sleep(0.1)
    raise AssertionError(
        f"{node_id} (old pid {old_pid}) not respawned after {timeout}s: "
        f"{cluster.status()['nodes']}"
    )


def test_roundtrip_byte_identical_fixed_and_auto(cluster, client):
    arr = _sample()
    for codec, local_codec in (
        ("gorilla", "gorilla"),
        ("auto", resolve_policy("heuristic")),
    ):
        blob = client.compress_stream("t0/base", arr, codec)
        assert blob == compress_array(arr, local_codec)
        assert np.array_equal(
            client.decompress_stream("t0/base", blob), arr, equal_nan=True
        )


def test_kill_primary_between_requests_fails_over(cluster, client):
    arr = _sample(seed=23)
    stream = "t1/kill-between"
    primary, replica = client.nodes_for(stream)
    local = compress_array(arr, "auto")
    assert client.compress_stream(stream, arr, "auto") == local

    pid = cluster.node_pid(primary)
    cluster.kill_node(primary)
    # No sleep: the very next request must fail over, not error.
    assert client.compress_stream(stream, arr, "auto") == local
    assert np.array_equal(
        client.decompress_stream(stream, local), arr, equal_nan=True
    )
    respawned = _wait_respawned(cluster, primary, pid)
    assert respawned["restarts"] >= 1


def test_kill_primary_mid_request_fails_over(cluster, client):
    arr = _big()
    stream = "t2/kill-mid"
    primary = client.nodes_for(stream)[0]
    pid = cluster.node_pid(primary)
    local = compress_array(arr, SLOW_CODEC)

    # Fire the kill while the slow compress is in flight on the
    # primary.  The client's connection dies mid-read; the replay on
    # the replica must return the identical bytes.
    killer = threading.Timer(0.3, cluster.kill_node, args=(primary,))
    killer.start()
    try:
        blob = client.compress_stream(stream, arr, SLOW_CODEC)
    finally:
        killer.cancel()
    assert blob == local
    _wait_respawned(cluster, primary, pid)


def test_corrupt_stream_is_answered_not_failed_over(cluster, client):
    status_before = {
        n["id"]: n["restarts"] for n in cluster.status()["nodes"]
    }
    with pytest.raises(CorruptStreamError):
        client.decompress_stream("t3/corrupt", b"FCF\x00 garbage bytes")
    # A deterministic data error must not look like a node fault.
    status_after = {
        n["id"]: n["restarts"] for n in cluster.status()["nodes"]
    }
    assert status_after == status_before


def test_hammer_with_mid_run_kill_zero_errors(cluster, client):
    """The acceptance run: concurrent load, one node SIGKILLed mid-run.

    Every round trip must complete with byte-identical results —
    failed requests and wrong bytes both count as test failure.
    """
    _wait_all_up(cluster)
    workers, requests = 4, 6
    arrays = {
        index: _sample(n=8192, seed=100 + index) for index in range(workers)
    }
    locals_ = {
        index: compress_array(arrays[index], "auto")
        for index in range(workers)
    }
    failures: list[str] = []
    barrier = threading.Barrier(workers + 1)

    def _drive(index: int) -> None:
        stream = f"t4/hammer/{index}"
        own = ClusterClient(
            [(cluster.control_host, cluster.control_port)], timeout=60.0
        )
        barrier.wait()
        try:
            for _ in range(requests):
                blob = own.compress_stream(stream, arrays[index], "auto")
                if blob != locals_[index]:
                    failures.append(f"{stream}: wrong bytes")
                out = own.decompress_stream(stream, blob)
                if not np.array_equal(out, arrays[index], equal_nan=True):
                    failures.append(f"{stream}: wrong round trip")
        except Exception as exc:  # noqa: BLE001 - the point of the test
            failures.append(f"{stream}: {type(exc).__name__}: {exc}")
        finally:
            own.close()

    threads = [
        threading.Thread(target=_drive, args=(index,), daemon=True)
        for index in range(workers)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    time.sleep(0.15)
    pid = cluster.node_pid("node-1")
    cluster.kill_node("node-1")
    for thread in threads:
        thread.join(timeout=120.0)
    assert failures == []
    _wait_respawned(cluster, "node-1", pid)


def test_drain_keeps_node_down_and_traffic_flowing(cluster, client):
    """Runs last in this module: it permanently removes node-0."""
    _wait_all_up(cluster)
    answer = cluster.drain("node-0")
    assert answer["state"] == "down"
    # the health loop must not resurrect a drained node
    time.sleep(cluster.health_interval * 6)
    status = {n["id"]: n for n in cluster.status()["nodes"]}
    assert status["node-0"]["state"] == "down"

    arr = _sample(seed=41)
    local = compress_array(arr, "auto")
    for index in range(6):  # several streams → both survivors serve
        stream = f"t5/drain/{index}"
        assert client.compress_stream(stream, arr, "auto") == local


def test_whole_replica_set_loss_is_a_cluster_error():
    """With no survivors the client raises ClusterError, never junk."""
    supervisor = ClusterSupervisor(
        1, replication=1, health_interval=0.1, auto_restart=False,
        node_grace=0.5,
    )
    supervisor.start()
    try:
        with ClusterClient(
            [(supervisor.control_host, supervisor.control_port)], timeout=5.0
        ) as client:
            arr = _sample(seed=5)
            blob = client.compress_stream("t6/only", arr, "gorilla")
            assert blob == compress_array(arr, "gorilla")
            supervisor.kill_node("node-0")
            with pytest.raises(ClusterError, match="no replica"):
                client.compress_stream("t6/only", arr, "gorilla")
    finally:
        supervisor.stop()
