"""Tests for the fcbench command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("FCBENCH_CACHE_DIR", str(tmp_path))
    return tmp_path


def test_list_methods_and_datasets(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "bitshuffle-zstd" in out
    assert "citytemp" in out
    assert "HPC" in out


def test_list_methods_only(capsys):
    assert main(["list", "--methods"]) == 0
    out = capsys.readouterr().out
    assert "gorilla" in out
    assert "citytemp" not in out


def test_run_streams_cells_and_summarizes(capsys):
    rc = main(
        [
            "run",
            "--methods", "gorilla,chimp",
            "--datasets", "citytemp",
            "--target-elements", "512",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "[   1/2]" in out and "[   2/2]" in out
    assert "ok=2 failed=0" in out
    assert "0 hits / 2 misses" in out


def test_run_quiet_emits_summary_only(capsys):
    rc = main(
        [
            "run", "--quiet",
            "--methods", "gorilla",
            "--datasets", "citytemp",
            "--target-elements", "512",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert out.count("\n") == 1
    assert out.startswith("ran 1 cells")


def test_run_reports_cache_hits_on_second_invocation(capsys):
    args = [
        "run", "--quiet",
        "--methods", "gorilla",
        "--datasets", "citytemp",
        "--target-elements", "512",
    ]
    main(args)
    capsys.readouterr()
    main(args)
    assert "cache: 1 hits / 0 misses" in capsys.readouterr().out


def test_run_rejects_unknown_method(capsys):
    rc = main(["run", "--methods", "zipzap"])
    assert rc == 2
    assert "unknown methods: zipzap" in capsys.readouterr().err


def test_run_rejects_unknown_dataset(capsys):
    rc = main(["run", "--datasets", "nope"])
    assert rc == 2
    assert "unknown datasets: nope" in capsys.readouterr().err


def test_cache_inspect_and_clear(tmp_path, capsys):
    main(
        [
            "run", "--quiet",
            "--methods", "gorilla,chimp",
            "--datasets", "citytemp",
            "--target-elements", "512",
        ]
    )
    (tmp_path / "suite_oldformat.json").write_text("[]")
    capsys.readouterr()

    assert main(["cache"]) == 0
    out = capsys.readouterr().out
    assert "cells: 2 (0 stale" in out
    assert "legacy suite blobs: 1" in out
    assert "last run: 0 hits / 2 misses" in out

    assert main(["cache", "clear", "--stale"]) == 0
    out = capsys.readouterr().out
    assert "0 cell(s), 1 legacy blob(s), 2 kept" in out
    assert not list(tmp_path.glob("suite_*.json"))
    assert len(list(tmp_path.glob("cells/*/*.json"))) == 2

    assert main(["cache", "clear"]) == 0
    assert not list(tmp_path.glob("cells/*/*.json"))


def test_report_table4(capsys):
    rc = main(
        [
            "report", "table4",
            "--methods", "gorilla,chimp",
            "--datasets", "citytemp,gas-price",
            "--target-elements", "512",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "Table 4" in out
    assert "Gorilla" in out and "Chimp" in out


def test_report_arbitrary_metric(capsys):
    rc = main(
        [
            "report",
            "--metric", "compressed_bytes",
            "--methods", "gorilla",
            "--datasets", "citytemp",
            "--target-elements", "512",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "metric: compressed_bytes" in out
    assert "citytemp" in out


def test_report_unknown_metric(capsys):
    rc = main(
        [
            "report",
            "--metric", "nonsense",
            "--methods", "gorilla",
            "--datasets", "citytemp",
            "--target-elements", "512",
        ]
    )
    assert rc == 2
    assert "unknown metric" in capsys.readouterr().err


def test_parallel_run_matches_serial_fingerprint(capsys):
    args = [
        "run", "--quiet", "--no-cache",
        "--methods", "gorilla,chimp",
        "--datasets", "citytemp,gas-price",
        "--target-elements", "512",
    ]
    assert main(args + ["--jobs", "1"]) == 0
    serial = capsys.readouterr().out
    assert main(args + ["--jobs", "2"]) == 0
    parallel = capsys.readouterr().out
    def fp(text):
        return text.rsplit("fingerprint=", 1)[1].split()[0]

    assert fp(serial) == fp(parallel)


def test_run_jobs_zero_auto_detects(capsys):
    rc = main(
        [
            "run", "--quiet", "--no-cache",
            "--methods", "gorilla",
            "--datasets", "citytemp",
            "--target-elements", "512",
            "--jobs", "0",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    import os

    assert f"jobs={os.cpu_count() or 1}" in out


def test_jobs_help_documents_auto_detection(capsys):
    with pytest.raises(SystemExit):
        main(["run", "--help"])
    assert "os.cpu_count()" in capsys.readouterr().out


def test_bench_writes_snapshot_and_diffs(tmp_path, capsys):
    import json

    out_path = tmp_path / "BENCH_test.json"
    args = [
        "bench",
        "--methods", "gorilla",
        "--datasets", "citytemp",
        "--elements", "1024",
        "--repeats", "1",
        "--no-guard",
        "--output", str(out_path),
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "enc" in out and "MB/s" in out and "vs scalar" in out
    report = json.loads(out_path.read_text())
    assert report["cells"][0]["method"] == "gorilla"
    assert report["cells"][0]["encode_speedup_vs_scalar"] > 0

    # A second snapshot in the same directory diffs against the first.
    second = tmp_path / "BENCH_test2.json"
    assert main(args[:-1] + [str(second)]) == 0
    out = capsys.readouterr().out
    assert "enc Δ" in out


def test_bench_rejects_unknown_method(capsys):
    assert main(["bench", "--methods", "nope"]) == 2
    assert "unknown methods" in capsys.readouterr().err


def test_version_flag_prints_package_version(capsys):
    import repro

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert capsys.readouterr().out.strip() == f"fcbench {repro.__version__}"


def test_client_requires_subcommand(capsys):
    with pytest.raises(SystemExit) as excinfo:  # argparse's own exit
        main(["client"])
    assert excinfo.value.code == 2


def test_client_refused_connection_is_a_clean_error(tmp_path, capsys):
    import socket

    # Grab a port, then close it so nothing is listening there.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    code = main(["client", "--port", str(port), "--retries", "0", "ping"])
    assert code == 2
    assert "error" in capsys.readouterr().err
