"""Tests for suite orchestration and caching."""

from repro.core.suite import default_datasets, default_methods, run_suite


def test_default_methods_are_table_order():
    methods = default_methods()
    assert methods[0] == "pfpc"
    assert methods[-1] == "ndzip-gpu"
    assert "dzip" not in methods


def test_default_datasets_all_33():
    assert len(default_datasets()) == 33


def test_mini_suite_and_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("FCBENCH_CACHE_DIR", str(tmp_path))
    results = run_suite(
        methods=["chimp", "gorilla"],
        datasets=["citytemp", "gas-price"],
        target_elements=1024,
    )
    assert len(results) == 4
    assert all(m.ok for m in results.measurements)
    # Second call must come from the cache (same content).
    cached = run_suite(
        methods=["chimp", "gorilla"],
        datasets=["citytemp", "gas-price"],
        target_elements=1024,
    )
    assert [m.compression_ratio for m in cached.measurements] == [
        m.compression_ratio for m in results.measurements
    ]
    assert len(list(tmp_path.glob("suite_*.json"))) == 1


def test_cache_key_depends_on_scale(tmp_path, monkeypatch):
    monkeypatch.setenv("FCBENCH_CACHE_DIR", str(tmp_path))
    run_suite(methods=["gorilla"], datasets=["citytemp"], target_elements=512)
    run_suite(methods=["gorilla"], datasets=["citytemp"], target_elements=1024)
    assert len(list(tmp_path.glob("suite_*.json"))) == 2
