"""Tests for suite orchestration and the per-cell incremental cache."""

from repro.core.suite import (
    default_datasets,
    default_methods,
    run_suite,
    run_suite_detailed,
)


def test_default_methods_are_table_order():
    methods = default_methods()
    assert methods[0] == "pfpc"
    assert methods[-1] == "ndzip-gpu"
    assert "dzip" not in methods


def test_default_datasets_all_33():
    assert len(default_datasets()) == 33


def test_mini_suite_and_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("FCBENCH_CACHE_DIR", str(tmp_path))
    results = run_suite(
        methods=["chimp", "gorilla"],
        datasets=["citytemp", "gas-price"],
        target_elements=1024,
    )
    assert len(results) == 4
    assert all(m.ok for m in results.measurements)
    # One JSON file per cell, grouped by method.
    assert len(list(tmp_path.glob("cells/*/*.json"))) == 4
    assert len(list(tmp_path.glob("cells/chimp/*.json"))) == 2
    # Second call must be served entirely from the cache, bit-identical.
    rerun = run_suite_detailed(
        methods=["chimp", "gorilla"],
        datasets=["citytemp", "gas-price"],
        target_elements=1024,
    )
    assert (rerun.cache_stats.hits, rerun.cache_stats.misses) == (4, 0)
    assert [m.compression_ratio for m in rerun.results.measurements] == [
        m.compression_ratio for m in results.measurements
    ]
    assert rerun.results.fingerprint() == results.fingerprint()


def test_cache_key_depends_on_scale(tmp_path, monkeypatch):
    monkeypatch.setenv("FCBENCH_CACHE_DIR", str(tmp_path))
    run_suite(methods=["gorilla"], datasets=["citytemp"], target_elements=512)
    run_suite(methods=["gorilla"], datasets=["citytemp"], target_elements=1024)
    assert len(list(tmp_path.glob("cells/gorilla/*.json"))) == 2


def test_cache_key_depends_on_seed(tmp_path, monkeypatch):
    monkeypatch.setenv("FCBENCH_CACHE_DIR", str(tmp_path))
    run_suite(methods=["gorilla"], datasets=["citytemp"], target_elements=512)
    run_suite(methods=["gorilla"], datasets=["citytemp"], target_elements=512, seed=7)
    assert len(list(tmp_path.glob("cells/gorilla/*.json"))) == 2


def test_results_keep_dataset_major_order(tmp_path, monkeypatch):
    monkeypatch.setenv("FCBENCH_CACHE_DIR", str(tmp_path))
    results = run_suite(
        methods=["chimp", "gorilla"],
        datasets=["citytemp", "gas-price"],
        target_elements=512,
    )
    assert [(m.dataset, m.method) for m in results.measurements] == [
        ("citytemp", "chimp"),
        ("citytemp", "gorilla"),
        ("gas-price", "chimp"),
        ("gas-price", "gorilla"),
    ]


def test_on_cell_reports_cached_and_fresh(tmp_path, monkeypatch):
    monkeypatch.setenv("FCBENCH_CACHE_DIR", str(tmp_path))
    seen: list[tuple[str, str]] = []
    run_suite(
        methods=["gorilla"],
        datasets=["citytemp"],
        target_elements=512,
        on_cell=lambda task, m, elapsed: seen.append((task.method, task.dataset)),
    )
    run_suite(
        methods=["gorilla"],
        datasets=["citytemp"],
        target_elements=512,
        on_cell=lambda task, m, elapsed: seen.append((task.method, task.dataset)),
    )
    # The callback fires for the executed cell and again for the cache hit.
    assert seen == [("gorilla", "citytemp")] * 2
