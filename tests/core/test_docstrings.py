"""The usage examples in the orchestration docstrings must actually run.

Executes the doctest snippets embedded in repro.core.suite,
repro.core.runner, and repro.cli.  The suite/cli examples point
FCBENCH_CACHE_DIR at their own temp directories; monkeypatch restores
the variable afterwards so other tests see their original cache.
"""

from __future__ import annotations

import doctest

import pytest

import repro.cli
import repro.core.runner
import repro.core.suite
import repro.encodings.vectorbit
import repro.perf.bench
import repro.perf.loadgen


@pytest.mark.parametrize(
    "module",
    [
        repro.core.suite,
        repro.core.runner,
        repro.cli,
        repro.encodings.vectorbit,
        repro.perf.bench,
        repro.perf.loadgen,
    ],
    ids=lambda m: m.__name__,
)
def test_docstring_examples_run(module, tmp_path, monkeypatch):
    monkeypatch.setenv("FCBENCH_CACHE_DIR", str(tmp_path))
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} lost its examples"
    assert result.failed == 0
