"""Tests for the parallel execution engine (repro.core.executor)."""

from __future__ import annotations

import pytest

from repro.core.executor import CellTask, execute_cells, resolve_jobs
from repro.core.results import ResultSet
from repro.core.runner import BenchmarkRunner
from repro.core.suite import run_suite

_TASKS = [
    CellTask(method, dataset, target_elements=512)
    for dataset in ("citytemp", "gas-price")
    for method in ("gorilla", "chimp")
]


class ExplodingRunner(BenchmarkRunner):
    """Raises a non-Repro exception on one designated cell.

    Defined at module scope so it pickles into pool workers.
    """

    def __init__(self, fail_method: str, fail_dataset: str) -> None:
        super().__init__()
        self.fail_method = fail_method
        self.fail_dataset = fail_dataset

    def run_cell(self, method, array, spec):
        if method == self.fail_method and spec.name == self.fail_dataset:
            raise RuntimeError("injected worker failure")
        return super().run_cell(method, array, spec)


# ----------------------------------------------------------------------
# Worker-count resolution
# ----------------------------------------------------------------------
def test_resolve_jobs_defaults_to_serial(monkeypatch):
    monkeypatch.delenv("FCBENCH_JOBS", raising=False)
    assert resolve_jobs() == 1


def test_resolve_jobs_env_override(monkeypatch):
    monkeypatch.setenv("FCBENCH_JOBS", "4")
    assert resolve_jobs() == 4
    # Explicit argument beats the environment.
    assert resolve_jobs(2) == 2


def test_resolve_jobs_clamps_and_tolerates_garbage(monkeypatch):
    assert resolve_jobs(-3) == 1
    monkeypatch.setenv("FCBENCH_JOBS", "not-a-number")
    assert resolve_jobs() == 1


def test_resolve_jobs_zero_auto_detects_cpu_count(monkeypatch):
    import os

    expected = os.cpu_count() or 1
    assert resolve_jobs(0) == expected
    monkeypatch.setenv("FCBENCH_JOBS", "0")
    assert resolve_jobs() == expected
    # cpu_count() can legitimately return None; auto still yields >= 1.
    monkeypatch.setattr(os, "cpu_count", lambda: None)
    assert resolve_jobs(0) == 1


# ----------------------------------------------------------------------
# Serial vs parallel equivalence
# ----------------------------------------------------------------------
def test_serial_and_parallel_results_identical():
    serial = ResultSet(execute_cells(_TASKS, jobs=1))
    parallel = ResultSet(execute_cells(_TASKS, jobs=2))
    assert len(serial) == len(parallel) == len(_TASKS)
    # Task order is preserved regardless of completion order...
    assert [(m.dataset, m.method) for m in serial.measurements] == [
        (t.dataset, t.method) for t in _TASKS
    ]
    assert [(m.dataset, m.method) for m in parallel.measurements] == [
        (t.dataset, t.method) for t in _TASKS
    ]
    # ...and every deterministic field matches bit-for-bit.
    assert serial.canonical() == parallel.canonical()
    assert serial.fingerprint() == parallel.fingerprint()


def test_run_suite_parallel_matches_serial(tmp_path, monkeypatch):
    monkeypatch.setenv("FCBENCH_CACHE_DIR", str(tmp_path))
    kwargs = dict(
        methods=["gorilla", "chimp"],
        datasets=["citytemp", "gas-price"],
        target_elements=512,
        use_cache=False,
    )
    serial = run_suite(jobs=1, **kwargs)
    parallel = run_suite(jobs=2, **kwargs)
    assert serial.fingerprint() == parallel.fingerprint()


# ----------------------------------------------------------------------
# Progress callbacks
# ----------------------------------------------------------------------
@pytest.mark.parametrize("jobs", [1, 2])
def test_on_result_fires_per_cell(jobs):
    seen: list[tuple[str, str]] = []

    def on_result(task, measurement, elapsed):
        assert measurement.ok
        assert elapsed >= 0.0
        seen.append((task.dataset, task.method))

    execute_cells(_TASKS, jobs=jobs, on_result=on_result)
    assert sorted(seen) == sorted((t.dataset, t.method) for t in _TASKS)


# ----------------------------------------------------------------------
# Fault isolation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("jobs", [1, 2])
def test_one_failing_cell_does_not_kill_the_suite(jobs):
    runner = ExplodingRunner("chimp", "citytemp")
    results = ResultSet(execute_cells(_TASKS, runner=runner, jobs=jobs))
    assert len(results) == len(_TASKS)
    failed = results.cell("chimp", "citytemp")
    assert failed is not None and not failed.ok
    assert "RuntimeError" in failed.error
    assert "injected worker failure" in failed.error
    others = [m for m in results.measurements if m is not failed]
    assert len(others) == 3 and all(m.ok for m in others)


def test_unknown_dataset_becomes_failed_measurement():
    [m] = execute_cells([CellTask("gorilla", "no-such-dataset")], jobs=1)
    assert not m.ok
    assert "DatasetError" in m.error


def test_unknown_method_becomes_failed_measurement():
    [m] = execute_cells([CellTask("no-such-method", "citytemp", 512)], jobs=1)
    assert not m.ok
    assert "KeyError" in m.error
