"""Tests for metric definitions (section 5.2)."""

import math

import pytest

from repro.core.metrics import (
    compression_ratio,
    decompression_asymmetry,
    method_mean_cr,
    method_mean_throughput,
    throughput_gbs,
)
from repro.core.results import Measurement


def test_cr_definition():
    assert compression_ratio(100, 50) == 2.0
    with pytest.raises(ValueError):
        compression_ratio(100, 0)


def test_throughput_definition():
    assert throughput_gbs(10**9, 2.0) == 0.5
    with pytest.raises(ValueError):
        throughput_gbs(10, 0.0)


def _m(cr, ct=1.0, dt=2.0, ok=True):
    return Measurement(
        method="m", dataset="d", domain="HPC", precision="D", ok=ok,
        compression_ratio=cr, compress_gbs=ct, decompress_gbs=dt,
    )


def test_harmonic_mean_cr():
    rows = [_m(1.0), _m(2.0)]
    assert method_mean_cr(rows) == pytest.approx(4 / 3)


def test_failures_excluded():
    rows = [_m(2.0), _m(99.0, ok=False)]
    assert method_mean_cr(rows) == 2.0


def test_empty_is_nan():
    assert math.isnan(method_mean_cr([]))


def test_throughput_means_are_arithmetic():
    rows = [_m(1.0, ct=1.0), _m(1.0, ct=3.0)]
    assert method_mean_throughput(rows, "compress") == 2.0


def test_asymmetry_signs():
    # Figure 9: positive means compression faster than decompression.
    assert decompression_asymmetry(2.0, 1.0) == pytest.approx(0.5)
    assert decompression_asymmetry(1.0, 2.0) == pytest.approx(-1.0)
    assert math.isnan(decompression_asymmetry(float("nan"), 1.0))
