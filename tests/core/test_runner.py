"""Tests for the benchmark runner's measurement protocol."""

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.core.runner import BenchmarkRunner, verify_roundtrip
from repro.data.catalog import get_spec
from repro.data.loader import load


@pytest.fixture(scope="module")
def runner():
    return BenchmarkRunner()


def test_verify_roundtrip_bit_level():
    a = np.array([0.0])
    b = np.array([-0.0])
    assert not verify_roundtrip(a, b)
    assert verify_roundtrip(a, a.copy())


def test_successful_cell(runner):
    spec = get_spec("citytemp")
    m = runner.run_cell("chimp", load("citytemp", 2048), spec)
    assert m.ok
    assert m.compression_ratio > 0.5
    assert m.compress_gbs == pytest.approx(0.034)  # anchored
    assert m.measured_compress_s > 0
    assert m.domain == "TS"


def test_gfc_paper_scale_skip(runner):
    spec = get_spec("miranda3d")  # 4 GB at paper scale
    m = runner.run_cell("gfc", load("miranda3d", 2048), spec)
    assert not m.ok
    assert "limit" in m.error


def test_gfc_runs_at_512mb_exactly(runner):
    spec = get_spec("wave")  # exactly 512 MB
    m = runner.run_cell("gfc", load("wave", 2048), spec)
    assert m.ok


def test_paper_limits_can_be_disabled():
    runner = BenchmarkRunner(paper_limits=False)
    spec = get_spec("miranda3d")
    m = runner.run_cell("gfc", load("miranda3d", 2048), spec)
    assert m.ok


def test_f32_reinterpreted_for_double_only(runner):
    comp = get_compressor("pfpc")
    arr = load("rsim", 2048)
    work = runner.prepare_input(comp, arr)
    assert work.dtype == np.float64
    assert work.nbytes >= arr.nbytes  # same bytes (padded if odd)
    np.testing.assert_array_equal(
        work.view(np.float32)[: arr.size], arr.ravel()
    )


def test_supported_dtype_passthrough(runner):
    comp = get_compressor("chimp")
    arr = load("rsim", 2048)
    assert runner.prepare_input(comp, arr) is arr


def test_wall_time_includes_gpu_transfers(runner):
    spec = get_spec("tpcH-order")
    gpu = runner.run_cell("mpc", load("tpcH-order", 2048), spec)
    cpu = runner.run_cell("ndzip-cpu", load("tpcH-order", 2048), spec)
    # MPC's kernels are ~15x faster but PCIe narrows the wall-time gap.
    kernel_gap = gpu.compress_gbs / cpu.compress_gbs
    wall_gap = cpu.compress_wall_ms / gpu.compress_wall_ms
    assert wall_gap < kernel_gap
