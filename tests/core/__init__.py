"""Test package."""
