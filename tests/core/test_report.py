"""Tests for table/figure text rendering."""

import numpy as np

from repro.core.report import ascii_bars, ascii_boxplot, format_matrix, format_table
from repro.stats.descriptive import boxplot_stats


def test_format_table_alignment():
    text = format_table(["name", "value"], [["a", "1.5"], ["bb", "10"]])
    lines = text.splitlines()
    assert len({len(l) for l in lines}) == 1  # all rows equal width


def test_format_matrix_nan_as_dash():
    matrix = np.array([[1.0, np.nan]])
    text = format_matrix(["row"], ["a", "b"], matrix)
    assert "-" in text.splitlines()[-1]
    assert "1.000" in text


def test_ascii_boxplot_markers():
    stats = boxplot_stats(np.concatenate([np.ones(50), [1.5], [9.0]]))
    line = ascii_boxplot(stats, 0.0, 10.0)
    assert "|" in line and "o" in line


def test_ascii_bars_log_scale():
    text = ascii_bars(["slow", "fast"], [0.01, 100.0], log_scale=True)
    slow_line, fast_line = text.splitlines()
    assert fast_line.count("#") > slow_line.count("#")


def test_ascii_bars_handles_missing():
    text = ascii_bars(["a", "b"], [1.0, float("nan")])
    assert "-" in text.splitlines()[1]
