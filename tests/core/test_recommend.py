"""Tests for the recommendation map (section 7.3)."""

import pytest

from repro.core.recommend import recommend
from repro.core.results import Measurement, ResultSet


def _m(method, dataset, domain, cr, wall=100.0, ok=True):
    return Measurement(
        method=method, dataset=dataset, domain=domain, precision="D", ok=ok,
        compression_ratio=cr, compress_gbs=1.0, decompress_gbs=1.0,
        compress_wall_ms=wall, decompress_wall_ms=wall,
    )


@pytest.fixture
def toy_results():
    rows = []
    for dataset, domain in (("h1", "HPC"), ("t1", "TS"), ("o1", "OBS"), ("d1", "DB")):
        hpc_cr = 2.0 if domain == "HPC" else 1.1
        db_cr = 1.8 if domain == "DB" else 1.2
        rows.append(_m("fpzip", dataset, domain, cr=hpc_cr, wall=5000))
        rows.append(_m("chimp", dataset, domain, cr=db_cr, wall=9000))
        rows.append(_m("bitshuffle-zstd", dataset, domain, cr=1.5, wall=300))
        rows.append(_m("mpc", dataset, domain, cr=1.3, wall=250))
        rows.append(_m("gfc", dataset, domain, cr=1.0, wall=100))
        rows.append(_m("nvcomp-bitcomp", dataset, domain, cr=1.0, wall=50))
    return ResultSet(rows)


def test_storage_winners_per_domain(toy_results):
    rec = recommend(toy_results)
    assert rec.storage_by_domain["HPC"] == "fpzip"
    assert rec.storage_by_domain["DB"] == "chimp"


def test_fastest_excludes_nvcomp_and_gfc(toy_results):
    # Observation 9 / section 7.3: GFC's input limit and nvCOMP's missing
    # wall-time API keep both out of the speed recommendation.
    rec = recommend(toy_results)
    assert "gfc" not in rec.fastest
    assert "nvcomp-bitcomp" not in rec.fastest
    assert rec.fastest[0] == "mpc"


def test_general_balances_cr_and_speed(toy_results):
    rec = recommend(toy_results)
    assert "bitshuffle-zstd" in rec.general


def test_summary_renders(toy_results):
    text = recommend(toy_results).summary()
    assert "storage reduction" in text
    assert "HPC" in text
