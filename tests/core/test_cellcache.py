"""Tests for the per-cell incremental cache (repro.core.cache)."""

from __future__ import annotations

import json

from repro.core import cache as cc
from repro.core.runner import BenchmarkRunner
from repro.core.suite import run_suite_detailed

_KW = dict(
    methods=["gorilla", "chimp"],
    datasets=["citytemp", "gas-price"],
    target_elements=512,
)


def test_hit_miss_accounting(tmp_path, monkeypatch):
    monkeypatch.setenv("FCBENCH_CACHE_DIR", str(tmp_path))
    cold = run_suite_detailed(**_KW)
    assert (cold.cache_stats.hits, cold.cache_stats.misses) == (0, 4)
    assert cold.cache_stats.stores == 4
    warm = run_suite_detailed(**_KW)
    assert (warm.cache_stats.hits, warm.cache_stats.misses) == (4, 0)
    assert warm.cache_stats.hit_rate == 1.0


def test_editing_one_compressor_reruns_only_its_column(tmp_path, monkeypatch):
    monkeypatch.setenv("FCBENCH_CACHE_DIR", str(tmp_path))
    run_suite_detailed(**_KW)

    real = cc.method_fingerprint

    def touched(name: str) -> str:
        return "deadbeefdeadbeef" if name == "gorilla" else real(name)

    # Simulate an edit to gorilla.py: its source fingerprint changes.
    monkeypatch.setattr(cc, "method_fingerprint", touched)
    rerun = run_suite_detailed(**_KW)
    # Chimp's two cells hit; only gorilla's column re-executed.
    assert (rerun.cache_stats.hits, rerun.cache_stats.misses) == (2, 2)


def test_transient_failures_are_never_cached(tmp_path, monkeypatch):
    monkeypatch.setenv("FCBENCH_CACHE_DIR", str(tmp_path))
    from repro.core import suite as suite_mod
    from repro.core.results import Measurement

    def crash_all(tasks, runner=None, jobs=None, on_result=None):
        return [
            Measurement(
                method=t.method,
                dataset=t.dataset,
                domain="?",
                precision="?",
                ok=False,
                error="MemoryError: injected",
                transient=True,
            )
            for t in tasks
        ]

    monkeypatch.setattr(suite_mod, "execute_cells", crash_all)
    run = run_suite_detailed(methods=["gorilla"], datasets=["citytemp"],
                             target_elements=512)
    assert not run.results.measurements[0].ok
    # The crash-synthesized failure must not be persisted...
    assert run.cache_stats.stores == 0
    assert not list(tmp_path.glob("cells/*/*.json"))
    # ...so a healthy rerun is a miss that re-executes and caches.
    monkeypatch.undo()
    monkeypatch.setenv("FCBENCH_CACHE_DIR", str(tmp_path))
    healthy = run_suite_detailed(methods=["gorilla"], datasets=["citytemp"],
                                 target_elements=512)
    assert healthy.cache_stats.misses == 1
    assert healthy.results.measurements[0].ok


def test_runner_fingerprint_distinguishes_policies():
    base = cc.runner_fingerprint(BenchmarkRunner())
    assert cc.runner_fingerprint(BenchmarkRunner(verify=False)) != base
    assert cc.runner_fingerprint(BenchmarkRunner(paper_limits=False)) != base
    # Stable for equivalent configurations.
    assert cc.runner_fingerprint(BenchmarkRunner()) == base


def test_custom_runner_does_not_touch_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("FCBENCH_CACHE_DIR", str(tmp_path))
    run = run_suite_detailed(runner=BenchmarkRunner(verify=False), **_KW)
    assert run.cache_stats.lookups == 0
    assert not list(tmp_path.glob("cells/*/*.json"))


def _write_stale_cell(root, version="v0"):
    path = root / "cells" / "gorilla" / "citytemp_0000000000.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "cache_version": version,
        "method": "gorilla",
        "dataset": "citytemp",
        "target_elements": 512,
        "seed": 0,
        "method_fingerprint": "0" * 16,
        "runner_fingerprint": "0" * 16,
        "measurement": {},
    }
    path.write_text(json.dumps(payload))
    return path


def test_scan_classifies_stale_and_legacy(tmp_path, monkeypatch):
    monkeypatch.setenv("FCBENCH_CACHE_DIR", str(tmp_path))
    run_suite_detailed(methods=["chimp"], datasets=["citytemp"], target_elements=512)
    stale = _write_stale_cell(tmp_path)
    legacy = tmp_path / "suite_deadbeef.json"
    legacy.write_text("[]")
    scan = cc.scan_cache()
    assert len(scan.entries) == 2
    assert [e.path for e in scan.stale_entries] == [stale]
    assert scan.legacy_blobs == [legacy]
    assert scan.per_method() == {"chimp": 1, "gorilla": 1}


def test_clear_stale_keeps_current_entries(tmp_path, monkeypatch):
    monkeypatch.setenv("FCBENCH_CACHE_DIR", str(tmp_path))
    run_suite_detailed(methods=["chimp"], datasets=["citytemp"], target_elements=512)
    _write_stale_cell(tmp_path)
    (tmp_path / "suite_deadbeef.json").write_text("[]")
    counts = cc.clear_cache(stale_only=True)
    assert counts == {"removed_cells": 1, "removed_legacy": 1, "kept": 1}
    # The fresh cell survived and still serves hits.
    warm = run_suite_detailed(
        methods=["chimp"], datasets=["citytemp"], target_elements=512
    )
    assert (warm.cache_stats.hits, warm.cache_stats.misses) == (1, 0)


def test_clear_all_removes_everything(tmp_path, monkeypatch):
    monkeypatch.setenv("FCBENCH_CACHE_DIR", str(tmp_path))
    run_suite_detailed(methods=["chimp"], datasets=["citytemp"], target_elements=512)
    assert cc.read_last_run() is not None
    counts = cc.clear_cache(stale_only=False)
    assert counts["removed_cells"] == 1
    assert not list(tmp_path.glob("cells/*/*.json"))
    assert cc.read_last_run() is None


def test_corrupt_cell_file_is_a_miss_and_stale(tmp_path, monkeypatch):
    monkeypatch.setenv("FCBENCH_CACHE_DIR", str(tmp_path))
    run_suite_detailed(methods=["gorilla"], datasets=["citytemp"], target_elements=512)
    [cell] = list(tmp_path.glob("cells/gorilla/*.json"))
    cell.write_text("{not json")
    assert [e.stale for e in cc.scan_cache().entries] == [True]
    rerun = run_suite_detailed(
        methods=["gorilla"], datasets=["citytemp"], target_elements=512
    )
    assert (rerun.cache_stats.hits, rerun.cache_stats.misses) == (0, 1)
    # The miss re-executed and overwrote the corrupt file with a good one.
    assert [e.stale for e in cc.scan_cache().entries] == [False]


def test_last_run_counters_persisted(tmp_path, monkeypatch):
    monkeypatch.setenv("FCBENCH_CACHE_DIR", str(tmp_path))
    run_suite_detailed(**_KW)
    last = cc.read_last_run()
    assert last is not None
    assert last["misses"] == 4 and last["cells"] == 4
    run_suite_detailed(**_KW)
    last = cc.read_last_run()
    assert last["hits"] == 4 and last["misses"] == 0
