"""Tests for measurement records and result sets."""

import math

import numpy as np

from repro.core.results import Measurement, ResultSet


def _m(method, dataset, cr=1.5, ok=True, domain="HPC"):
    return Measurement(
        method=method, dataset=dataset, domain=domain, precision="D",
        ok=ok, compression_ratio=cr if ok else float("nan"),
        compress_gbs=1.0, decompress_gbs=2.0,
    )


def test_projections():
    rs = ResultSet([_m("a", "x"), _m("b", "x"), _m("a", "y", domain="TS")])
    assert rs.methods() == ["a", "b"]
    assert rs.datasets() == ["x", "y"]
    assert len(rs.for_method("a")) == 2
    assert len(rs.for_domain("TS")) == 1
    assert rs.cell("b", "x") is not None
    assert rs.cell("b", "y") is None


def test_matrix_shape_and_nan_for_failures():
    rs = ResultSet([_m("a", "x", cr=2.0), _m("b", "x", ok=False),
                    _m("a", "y", cr=3.0), _m("b", "y", cr=1.0)])
    matrix = rs.matrix("compression_ratio", ["a", "b"], ["x", "y"])
    assert matrix.shape == (2, 2)
    assert matrix[0, 0] == 2.0
    assert math.isnan(matrix[0, 1])


def test_values_filters_failures():
    rs = ResultSet([_m("a", "x", cr=2.0), _m("b", "x", ok=False)])
    np.testing.assert_array_equal(rs.values("compression_ratio"), [2.0])


def test_json_roundtrip(tmp_path):
    rs = ResultSet([_m("a", "x"), _m("b", "y", ok=False)])
    path = tmp_path / "results.json"
    rs.to_json(path)
    loaded = ResultSet.from_json(path)
    assert len(loaded) == 2
    first = loaded.measurements[0]
    assert (first.method, first.dataset, first.compression_ratio) == (
        "a", "x", 1.5,
    )
    # NaN fields survive the JSON trip as NaN (not null/zero).
    assert math.isnan(loaded.measurements[1].compression_ratio)
    assert loaded.measurements[1].ok is False
