"""Corruption and failure-injection tests: errors must be loud and typed."""

import numpy as np
import pytest

from repro.compressors import compressor_names, get_compressor
from repro.errors import ReproError

_METHODS = [m for m in compressor_names() if m != "dzip"]


def _stream(method):
    comp = get_compressor(method)
    rng = np.random.default_rng(42)
    arr = np.round(rng.normal(10, 2, 600), 2)
    return comp, comp.compress(arr), arr


@pytest.mark.parametrize("method", _METHODS)
def test_truncated_stream_raises_repro_error(method):
    comp, blob, _ = _stream(method)
    for cut in (len(blob) // 4, len(blob) // 2, len(blob) - 3):
        try:
            out = comp.decompress(blob[:cut])
        except ReproError:
            continue  # loud, typed failure: exactly what we want
        except Exception as exc:  # pragma: no cover - diagnostic aid
            pytest.fail(f"{method} leaked {type(exc).__name__} on truncation")
        # Silently returning wrong data would be a correctness bug.
        pytest.fail(f"{method} decoded a truncated stream to {out.shape}")


@pytest.mark.parametrize("method", _METHODS)
def test_empty_payload_raises(method):
    comp = get_compressor(method)
    with pytest.raises(ReproError):
        comp.decompress(b"")


def test_header_shape_overflow_guarded():
    comp = get_compressor("gorilla")
    blob = bytearray(comp.compress(np.ones(16)))
    blob[3] = 0xFF  # inflate the shape varint
    with pytest.raises(ReproError):
        comp.decompress(bytes(blob))


def test_bitmap_mismatch_detected():
    comp = get_compressor("mpc")
    arr = np.cumsum(np.random.default_rng(0).normal(0, 1e-6, 2048))
    blob = bytearray(comp.compress(arr))
    blob[-1] ^= 0xFF  # corrupt the nonzero-word payload tail
    try:
        out = comp.decompress(bytes(blob))
        # A tail flip may decode (it is data, not structure) but must
        # never crash with a non-repro exception.
        assert out.shape == arr.shape
    except ReproError:
        pass


def test_wrong_dtype_stream_mismatch():
    comp = get_compressor("chimp")
    blob = bytearray(comp.compress(np.ones(32, dtype=np.float32)))
    blob[1] = 1  # claim float64
    with pytest.raises(ReproError):
        comp.decompress(bytes(blob))
