"""Smoke path: the exact CLI invocation documented in the README.

Marked ``smoke`` so CI can select it with ``-m smoke``; it also runs in
the default tier-1 sweep.  Exercises the full stack end to end: CLI
parsing -> suite orchestration -> process-pool executor -> per-cell
cache -> summary/cache reporting.
"""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.mark.smoke
def test_fcbench_run_smoke(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("FCBENCH_CACHE_DIR", str(tmp_path))
    args = [
        "run",
        "--methods", "gorilla,chimp",
        "--datasets", "msg-bt",
        "--jobs", "2",
        "--target-elements", "2048",
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "ok=2 failed=0" in out
    assert "(jobs=2)" in out
    # Both cells were cached; a re-run is pure hits.
    assert main(args) == 0
    assert "cache: 2 hits / 0 misses" in capsys.readouterr().out
    # The cache subcommand exposes the same counters.
    assert main(["cache"]) == 0
    assert "last run: 2 hits / 0 misses" in capsys.readouterr().out
