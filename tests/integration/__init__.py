"""Test package."""
