"""End-to-end pipeline: generate -> store -> read -> query."""

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.data import get_spec, load
from repro.storage import ContainerReader, ContainerWriter, DataFrame


@pytest.mark.parametrize("filter_name", ["chimp", "bitshuffle-lz4", "mpc"])
def test_generate_store_scan(tmp_path, filter_name):
    """The paper's Figure 4 loop: HDF5-like file -> frame -> scan."""
    arr = load("nyc-taxi", 4096).copy()
    writer = ContainerWriter(chunk_elements=1024)
    writer.add_dataset("taxi", arr, filter_name=filter_name)
    path = tmp_path / "db.fcbc"
    writer.save(path)

    reader = ContainerReader(path)
    table = reader.read_dataset("taxi")
    np.testing.assert_array_equal(
        table.view(np.uint64), arr.view(np.uint64)
    )

    frame = DataFrame.from_table(table)
    edges = frame.histogram_edges(frame.column_names[0], bins=10)
    for edge in edges[1:]:
        mask = frame.scan_less_equal(frame.column_names[0], float(edge))
        np.testing.assert_array_equal(mask, table[:, 0] <= edge)


def test_insitu_timestep_loop(tmp_path):
    """Simulation writing successive timesteps through a compressed store."""
    rng = np.random.default_rng(0)
    field = np.cumsum(rng.normal(0, 0.01, (8, 16, 16)), axis=0)
    writer = ContainerWriter(chunk_elements=512)
    for step in range(4):
        field = field + rng.normal(0, 0.001, field.shape)
        writer.add_dataset(f"step{step}", field, filter_name="ndzip-cpu")
    path = tmp_path / "sim.fcbc"
    writer.save(path)

    reader = ContainerReader(path)
    assert reader.dataset_names() == [f"step{i}" for i in range(4)]
    last = reader.read_dataset("step3")
    np.testing.assert_array_equal(
        last.view(np.uint64), field.view(np.uint64)
    )


def test_buff_query_without_decode_vs_decoded_scan(tmp_path):
    """BUFF's selective filter agrees with the decoded full scan."""
    arr = np.round(np.random.default_rng(1).normal(30, 8, 6000), 2)
    comp = get_compressor("buff")
    blob = comp.compress(arr)
    threshold = 30.0
    encoded_scan = comp.scan_less_equal(blob, threshold)
    decoded_scan = comp.decompress(blob) <= threshold
    np.testing.assert_array_equal(encoded_scan, decoded_scan)


def test_cross_method_stream_confusion_fails_loud():
    a = get_compressor("gorilla").compress(np.ones(64))
    with pytest.raises(Exception):
        get_compressor("fpzip").decompress(a)


def test_full_suite_cell_consistency():
    """Suite CR equals a direct compress call for the same input."""
    from repro.core.runner import BenchmarkRunner

    spec = get_spec("citytemp")
    arr = load("citytemp", 2048)
    cell = BenchmarkRunner().run_cell("chimp", arr, spec)
    direct = arr.nbytes / len(get_compressor("chimp").compress(arr))
    assert cell.compression_ratio == pytest.approx(direct)
