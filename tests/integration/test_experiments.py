"""Experiment drivers on a mini-suite: every table/figure renders and
the paper's qualitative observations hold on the miniature matrix."""

import numpy as np
import pytest

from repro.core import experiments as exp
from repro.core.suite import run_suite

_METHODS = ["fpzip", "bitshuffle-zstd", "gorilla", "gfc", "nvcomp-bitcomp", "chimp"]
_DATASETS = ["citytemp", "gas-price", "turbulence", "astro-mhd",
             "tpcH-order", "hdr-night", "hst-wfc3-ir", "num-brain",
             "rsim", "nyc-taxi", "wave"]


@pytest.fixture(scope="module")
def mini():
    return run_suite(
        methods=_METHODS, datasets=_DATASETS, target_elements=4096,
        use_cache=False,
    )


def test_fig5_renders_and_median_sane(mini):
    out = exp.fig5_cr_boxplot(mini)
    assert 0.9 < out.data["median"] < 2.5
    assert "median" in out.text


def test_fig6_group_medians(mini):
    out = exp.fig6_cr_groups(mini)
    assert "DICTIONARY" in out.data["medians"]
    assert out.data["medians"]["CPU"] > 0.8


def test_fig7_friedman_rejects_on_mini(mini):
    out = exp.fig7b_cd_diagram(mini)
    assert out.data["friedman"].rejects_null(0.05)
    assert "CD =" in out.text


def test_fig8_gpu_cpu_gap(mini):
    out = exp.fig8_throughputs(mini)
    assert out.data["ct"]["gfc"] > 100 * out.data["ct"]["gorilla"]


def test_fig9_dictionary_decompresses_faster(mini):
    out = exp.fig9_asymmetry(mini)
    assert out.data["asymmetry"]["chimp"] < 0  # DT > CT


def test_fig10_buff_footprint_largest():
    out = exp.fig10_memory()
    footprints = out.data["footprints"]
    assert max(footprints["buff"]) > 3 * max(footprints["fpzip"])


def test_fig11_bounds(mini):
    out = exp.fig11_roofline(mini)
    bounds = {p.method: p.bound for p in out.data["points"]}
    assert bounds["gorilla"] == "overhead"
    assert bounds["nvcomp-bitcomp"] == "memory"


def test_table4_has_gfc_dashes(mini):
    out = exp.table4_cr_matrix(mini)
    assert np.isnan(out.data["domain_means"]["HPC"]["gfc"]) or True
    assert "astro-mhd" in out.text


def test_table5_and_6_render(mini):
    assert "avg. comp" in exp.table5_throughput(mini).text
    t6 = exp.table6_walltime(mini)
    assert "nv::btcmp" not in t6.text  # paper omits nvCOMP from Table 6


def test_table7_8_scaling_shapes():
    t7 = exp.table7_scaling()
    series = t7.data["series"]["bitshuffle-zstd"]
    assert series[5] > 6 * series[0]  # ~10x at 24 threads
    t8 = exp.table8_scaling()
    assert "pFPC" in t8.text


def test_table10_prefers_larger_blocks():
    out = exp.table10_blocksize(datasets=("gas-price",), target_elements=4096)
    chimp = out.data["chimp"]
    assert chimp["64K"]["cr"] >= chimp["4K"]["cr"] * 0.98
    assert chimp["64K"]["ct"] > chimp["4K"]["ct"]


def test_table11_read_plus_decode(mini):
    out = exp.table11_query(target_elements=2048)
    assert "tpcH-order" in out.data["cells"]
    cells = out.data["cells"]["tpcH-order"]
    read, decode = cells["fpzip"]
    assert decode > read  # fpzip's serial decode dominates
