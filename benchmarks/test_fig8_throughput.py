"""Figure 8: compression and decompression throughputs.

Paper claims (Observation 3): GPU methods are ~350x faster at the
median; nvCOMP::bitcomp and ndzip-CPU are the fastest GPU/CPU
compressors; nvCOMP::LZ4 is the slowest GPU method.
"""

import numpy as np

from repro.core.experiments import fig8_throughputs


def test_fig8(benchmark, suite_results, emit):
    out = benchmark(fig8_throughputs, suite_results)
    emit("fig8_throughput", str(out))
    ct = out.data["ct"]
    gpu = ["gfc", "mpc", "nvcomp-lz4", "nvcomp-bitcomp", "ndzip-gpu"]
    cpu = [m for m in ct if m not in gpu]
    ratio = np.median([ct[m] for m in gpu]) / np.median([ct[m] for m in cpu])
    assert ratio > 100, f"GPU/CPU median gap should be huge, got {ratio:.0f}x"
    assert max(ct, key=lambda m: ct[m]) == "nvcomp-bitcomp"
    assert max((m for m in cpu), key=lambda m: ct[m]) == "ndzip-cpu"
    assert min((m for m in gpu), key=lambda m: ct[m]) == "nvcomp-lz4"
