"""Shared fixtures for the table/figure regeneration benchmarks.

The full 14-method x 33-dataset suite is executed once; every benchmark
consumes the same matrix, regenerates its table or figure, asserts the
paper's qualitative claims, and writes the rendered text to
benchmarks/output/.

Suite execution goes through repro.core.suite, which caches each
(method, dataset) cell individually under .fcbench_cache/cells/ — so a
compressor edit re-runs only that method's column here — and fans cold
cells out over a process pool when FCBENCH_JOBS (or jobs=) asks for
parallelism.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.suite import run_suite

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def suite_results():
    return run_suite()


@pytest.fixture(scope="session")
def emit():
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _emit


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` exactly once (drivers that re-compress are slow)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              iterations=1, rounds=1)
