"""Figure 5: boxplot of all compression ratios.

Paper claims (Observation 1): the median CR is ~1.16, most ratios are
<= 2.0, and outliers reach into the double digits (astro-mhd).
"""

from repro.core.experiments import fig5_cr_boxplot


def test_fig5(benchmark, suite_results, emit):
    out = benchmark(fig5_cr_boxplot, suite_results)
    emit("fig5_cr_boxplot", str(out))
    stats = out.data["stats"]
    assert 1.0 < out.data["median"] < 1.35, "median CR should be ~1.16"
    assert stats.q3 < 2.0, "the bulk of ratios sits below 2.0"
    assert out.data["max"] > 10.0, "sparse datasets produce double-digit outliers"
