"""Table 7: parallel compression throughput over 1-48 threads.

Paper claims (Observation 7): pFPC and the bitshuffle variants reach
3-11x speedup by 16-24 threads and roll off past that; ndzip-CPU does
not scale (implementation issue).
"""

from repro.core.experiments import table7_scaling


def test_table7(benchmark, emit):
    out = benchmark(table7_scaling)
    emit("table7_scaling", str(out))
    series = out.data["series"]
    threads = list(out.data["threads"])

    def speedup(method, t):
        return series[method][threads.index(t)] / series[method][0]

    assert 3.0 < speedup("pfpc", 24) < 5.5
    assert speedup("bitshuffle-zstd", 24) > 7.0
    assert speedup("bitshuffle-lz4", 48) < speedup("bitshuffle-lz4", 16)
    assert abs(speedup("ndzip-cpu", 48) - 1.0) < 0.1
