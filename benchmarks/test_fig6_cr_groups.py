"""Figure 6: compression ratios by data groups and method groups.

Paper claims: single-precision compresses better than double; OBS is the
easiest domain and DB the hardest; dictionary-based predictors beat
delta-based ones; CPU methods beat GPU methods on ratio.
"""

from repro.core.experiments import fig6_cr_groups


def test_fig6(benchmark, suite_results, emit):
    out = benchmark(fig6_cr_groups, suite_results)
    emit("fig6_cr_groups", str(out))
    med = out.data["medians"]
    assert med["single (fp32)"] > med["double (fp64)"]
    assert med["OBS"] == max(med[d] for d in ("HPC", "TS", "OBS", "DB"))
    assert med["DICTIONARY"] > med["DELTA"]
    assert med["CPU"] > med["GPU"]
