"""Table 8: parallel decompression throughput over 1-48 threads."""

from repro.core.experiments import table8_scaling


def test_table8(benchmark, emit):
    out = benchmark(table8_scaling)
    emit("table8_scaling", str(out))
    series = out.data["series"]
    threads = list(out.data["threads"])

    # Single-thread decompression rates come from the paper's table.
    assert abs(series["pfpc"][0] - 91.0) < 1.0
    assert abs(series["bitshuffle-lz4"][0] - 1746.0) < 1.0
    assert abs(series["ndzip-cpu"][0] - 1197.0) < 1.0

    def speedup(method, t):
        return series[method][threads.index(t)] / series[method][0]

    assert speedup("pfpc", 24) > 2.5
    assert speedup("bitshuffle-zstd", 24) > 5.0
    assert abs(speedup("ndzip-cpu", 32) - 1.0) < 0.1
