"""Figure 7: harmonic-mean CRs and the critical-difference diagram.

Paper claims (Observation 2): no significant overall winner — the top
clique overlaps; bitshuffle::zstd ranks at the top and GFC at the bottom
but neither is separated from its neighbours by the critical difference;
the Friedman test rejects method equivalence.
"""

from repro.core.experiments import fig7a_mean_cr, fig7b_cd_diagram


def test_fig7a(benchmark, suite_results, emit):
    out = benchmark(fig7a_mean_cr, suite_results)
    emit("fig7a_mean_cr", str(out))
    means = out.data["means"]
    top = max(means, key=lambda m: means[m])
    assert top in {"bitshuffle-zstd", "chimp", "fpzip", "bitshuffle-lz4"}
    assert means["bitshuffle-zstd"] >= means["bitshuffle-lz4"], (
        "zstd's entropy stage must not lose to plain LZ4"
    )
    assert means["gfc"] < 1.15, "GFC's inaccurate predictor ranks last"


def test_fig7b(benchmark, suite_results, emit):
    out = benchmark(fig7b_cd_diagram, suite_results)
    emit("fig7b_cd_diagram", str(out))
    assert out.data["friedman"].rejects_null(0.05)
    nemenyi = out.data["nemenyi"]
    ordered = [m for m, _ in nemenyi.ordered()]
    # Top group contains the transform+dictionary family...
    assert set(ordered[:4]) & {"shf+zstd", "shf+LZ4", "fpzip", "Chimp", "MPC"}
    # ...and the weak-predictor group anchors the bottom of the ranking.
    assert {"GFC", "Gorilla", "BUFF", "pFPC"} <= set(ordered[-6:])
    # "No significant winner": first and second are within one CD.
    assert not nemenyi.significantly_different(ordered[0], ordered[1])
