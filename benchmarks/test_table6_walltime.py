"""Table 6: end-to-end wall time including host-device copies.

Paper claims (Observation 5): host-to-device copies are not negligible —
bitshuffle's wall times are comparable with GFC/MPC despite the GPU
methods' enormous kernel throughput, and ndzip-CPU beats ndzip-GPU
end to end.
"""

from repro.core.experiments import table6_walltime


def test_table6(benchmark, suite_results, emit):
    out = benchmark(table6_walltime, suite_results)
    emit("table6_walltime", str(out))
    walls = out.data["walls"]
    assert "nvcomp-lz4" not in walls, "paper omits nvCOMP from Table 6"

    shf_zstd_comp = walls["bitshuffle-zstd"][0]
    mpc_comp = walls["mpc"][0]
    assert shf_zstd_comp < 4 * mpc_comp, (
        "bitshuffle wall time is comparable with GPU methods"
    )
    assert walls["ndzip-cpu"][0] < walls["ndzip-gpu"][0], (
        "Observation 5: ndzip-CPU is faster end-to-end than ndzip-GPU"
    )
    assert walls["chimp"][0] == max(w[0] for w in walls.values()), (
        "Chimp's window search is the slowest compressor"
    )
