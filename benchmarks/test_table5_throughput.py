"""Table 5: average (de)compression throughput in GB/s.

These values are the calibration anchors of the performance model; the
bench verifies the anchored means agree with the published table and
that the orderings the paper highlights hold.
"""

import pytest

from repro.core.experiments import table5_throughput

_PAPER_CT = {
    "pfpc": 0.564, "spdp": 0.181, "fpzip": 0.079, "bitshuffle-lz4": 0.923,
    "bitshuffle-zstd": 1.407, "ndzip-cpu": 2.192, "buff": 0.202,
    "gorilla": 0.047, "chimp": 0.034, "gfc": 87.778, "mpc": 29.595,
    "nvcomp-lz4": 2.716, "nvcomp-bitcomp": 240.280, "ndzip-gpu": 142.635,
}


def test_table5(benchmark, suite_results, emit):
    out = benchmark(table5_throughput, suite_results)
    emit("table5_throughput", str(out))
    ct = out.data["ct"]
    for method, paper_value in _PAPER_CT.items():
        assert ct[method] == pytest.approx(paper_value, rel=0.02), method
    dt = out.data["dt"]
    assert dt["nvcomp-lz4"] > 15 * ct["nvcomp-lz4"]
    assert dt["gorilla"] > 2 * ct["gorilla"]
