"""Figure 10: memory footprint versus input size.

Paper claims: most methods use ~2x the input; pFPC and SPDP run in
fixed buffers (flat lines); BUFF needs ~7x, making it unsuitable for
in-situ analysis.
"""

from repro.core.experiments import fig10_memory


def test_fig10(benchmark, emit):
    out = benchmark(fig10_memory)
    emit("fig10_memory", str(out))
    fp = out.data["footprints"]
    assert fp["pfpc"][0] == fp["pfpc"][-1], "pFPC buffers are fixed"
    assert fp["spdp"][0] == fp["spdp"][-1], "SPDP buffers are fixed"
    growth = fp["fpzip"][-1] / fp["fpzip"][0]
    assert 15.0 < growth < 17.0  # 250 MB -> 4000 MB at factor 2
    assert fp["buff"][-1] > 3.0 * fp["fpzip"][-1], "BUFF needs ~7x"
