"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not part of the paper's tables; these isolate the contribution of each
architectural component the survey credits for its winners' ratios:

* bitshuffle: the bit transpose itself vs the LZ back-end alone,
* bitshuffle: zstd's entropy stage vs plain LZ4,
* ndzip: sign handling (zigzag) in the integer Lorenzo transform,
* Chimp: the 128-value window vs Gorilla's previous-value reference,
* BUFF: auto-detected vs explicit precision,
* pFPC: hash-predictor table size.
"""

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.compressors.buff import BuffCompressor
from repro.compressors.pfpc import PfpcCompressor
from repro.compressors.util import bit_transpose
from repro.data import load
from repro.encodings import lz4_compress, zstd_compress


def _cr(nbytes, blob):
    return nbytes / len(blob)


def test_bit_transpose_is_the_workhorse(benchmark, emit):
    """LZ4 with vs without the bitshuffle transform (section 3.7).

    The transform exposes per-bit-plane structure in scientific data but
    *destroys* the exact 8-byte value repeats that plain LZ4 exploits in
    transactional data — the mechanism behind the paper's domain split
    (bitshuffle wins HPC/OBS, plain nvCOMP::LZ4 wins TS/DB).
    """
    rows = []
    ratios = {}
    for name in ("turbulence", "rsim", "hst-wfc3-ir", "gas-price"):
        arr = load(name, 16384)
        flat = arr.ravel()
        raw = flat.tobytes()
        uint = np.uint32 if flat.dtype.itemsize == 4 else np.uint64
        transposed = bit_transpose(flat.view(uint)).tobytes()
        plain = _cr(len(raw), lz4_compress(raw))
        shuffled = _cr(len(raw), benchmark.pedantic(
            lz4_compress, args=(transposed,), iterations=1, rounds=1,
        ) if name == "turbulence" else lz4_compress(transposed))
        ratios[name] = (plain, shuffled)
        rows.append(f"{name:14s} plain LZ4 {plain:5.3f} -> +transpose {shuffled:5.3f}")
    emit("ablation_bit_transpose", "\n".join(rows))
    # Scientific data: the transform is the workhorse.
    for name in ("turbulence", "rsim", "hst-wfc3-ir"):
        plain, shuffled = ratios[name]
        assert shuffled > plain * 1.1, name
    # Repetitive transactional data: the transform scatters exact repeats.
    plain, shuffled = ratios["gas-price"]
    assert plain > shuffled


def test_entropy_stage_value(benchmark, emit):
    """zstd's Huffman stage vs LZ4 on identical transposed blocks."""
    wins = 0
    total = 0
    for name in ("msg-bt", "hdr-night", "tpcxBB-store"):
        arr = load(name, 16384)
        flat = arr.ravel()
        uint = np.uint32 if flat.dtype.itemsize == 4 else np.uint64
        per = 4096 // flat.dtype.itemsize
        for start in range(0, flat.size, per):
            block = bit_transpose(flat[start:start + per].view(uint)).tobytes()
            total += 1
            if len(zstd_compress(block)) <= len(lz4_compress(block)):
                wins += 1
    benchmark(lambda: None)
    emit("ablation_entropy_stage",
         f"zstd <= lz4 on {wins}/{total} transposed 4K blocks")
    assert wins / total > 0.6


def test_ndzip_zigzag_sign_handling(benchmark, emit):
    """Zigzag folding vs raw two's-complement residuals in ndzip."""
    import repro.compressors.ndzip as nd

    arr = load("turbulence", 16384)
    comp = get_compressor("ndzip-cpu")
    with_zz = _cr(arr.nbytes, benchmark(comp.compress, arr))

    orig_zz, orig_uz = nd._zigzag, nd._unzigzag
    nd._zigzag = lambda v: v
    nd._unzigzag = lambda v: v
    try:
        without_zz = _cr(arr.nbytes, comp.compress(arr))
    finally:
        nd._zigzag, nd._unzigzag = orig_zz, orig_uz
    emit("ablation_ndzip_zigzag",
         f"ndzip CR with zigzag {with_zz:.3f} vs without {without_zz:.3f}")
    assert with_zz > without_zz


def test_chimp_window_vs_previous_value(benchmark, emit):
    """Chimp's 128-value window vs Gorilla on value-recurring data."""
    arr = load("gas-price", 16384).copy().ravel()
    chimp = _cr(arr.nbytes, benchmark(get_compressor("chimp").compress, arr))
    gorilla = _cr(arr.nbytes, get_compressor("gorilla").compress(arr))
    emit("ablation_chimp_window",
         f"gas-price: Chimp {chimp:.3f} vs Gorilla {gorilla:.3f}")
    assert chimp > 1.5 * gorilla


@pytest.mark.parametrize("precision", [1, 2, 4])
def test_buff_precision_sweep(benchmark, precision, emit):
    """Explicit precision trades ratio against outlier volume."""
    rng = np.random.default_rng(0)
    arr = np.round(rng.normal(100, 20, 16384), 2)
    comp = BuffCompressor(precision=precision)
    blob = benchmark(comp.compress, arr)
    np.testing.assert_array_equal(comp.decompress(blob), arr)
    cr = _cr(arr.nbytes, blob)
    emit(f"ablation_buff_p{precision}", f"precision={precision}: CR {cr:.3f}")
    if precision == 1:
        assert cr < 1.1   # most values need 2 decimals -> outliers
    if precision == 2:
        assert cr > 1.4   # exact fit


@pytest.mark.parametrize("table_bits", [8, 16])
def test_pfpc_table_size(benchmark, table_bits, emit):
    """FCM/DFCM table size: larger tables predict longer contexts."""
    arr = load("msg-bt", 8192).copy()
    comp = PfpcCompressor(table_bits=table_bits)
    blob = benchmark.pedantic(comp.compress, args=(arr,),
                              iterations=1, rounds=1)
    cr = _cr(arr.nbytes, blob)
    emit(f"ablation_pfpc_t{table_bits}", f"table_bits={table_bits}: CR {cr:.3f}")
    assert cr > 0.9
