"""Table 4: the full compression-ratio matrix with domain averages.

Paper claims: fpzip leads HPC; nvCOMP::LZ4 and Chimp lead TS;
bitshuffle::zstd leads OBS; Chimp/nvCOMP::LZ4 lead DB; GFC shows "-"
for the 11 datasets above its 512 MB limit; astro-mhd is the outlier
column with double-digit ratios.
"""

from repro.core.experiments import table4_cr_matrix


def test_table4(benchmark, suite_results, emit):
    out = benchmark(table4_cr_matrix, suite_results)
    emit("table4_cr_matrix", str(out))
    means = out.data["domain_means"]

    hpc = means["HPC"]
    assert max(hpc, key=lambda m: hpc[m]) == "fpzip"

    ts = means["TS"]
    assert max(ts, key=lambda m: ts[m]) in {"nvcomp-lz4", "chimp"}

    obs = means["OBS"]
    assert max(obs, key=lambda m: obs[m]) in {
        "bitshuffle-zstd", "bitshuffle-lz4", "fpzip",
    }

    db = means["DB"]
    assert max(db, key=lambda m: db[m]) in {"chimp", "nvcomp-lz4"}
    # DB is the hardest domain for structure-based methods.
    assert db["ndzip-cpu"] < hpc["ndzip-cpu"]

    gfc_cells = [m for m in suite_results.for_method("gfc")]
    skipped = [m for m in gfc_cells if not m.ok]
    assert len(skipped) == 11, "Table 4 shows exactly 11 '-' cells for GFC"

    astro = [
        m.compression_ratio
        for m in suite_results.for_dataset("astro-mhd")
        if m.ok
    ]
    assert max(astro) > 10.0
