"""Table 9: the influence of dimension information on CR.

Paper claims (Observation 6): treating multidimensional data as 1-D
arrays does not significantly change compression ratios (Mann-Whitney U,
alpha = 0.05, no rejection for any of the five dimension-aware methods).
"""

from conftest import run_once

from repro.core.experiments import table9_dimension


def test_table9(benchmark, emit):
    out = run_once(benchmark, table9_dimension, target_elements=8192)
    emit("table9_dimension", str(out))
    for method, row in out.data.items():
        assert not row["significant"], (
            f"{method}: md vs 1d difference should not be significant "
            f"(p={row['p']:.3f})"
        )
        # Ratios themselves stay close.
        assert abs(row["md"] - row["1d"]) / row["md"] < 0.25, method
