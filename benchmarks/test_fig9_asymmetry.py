"""Figure 9: (CT - DT) / CT throughput asymmetry.

Paper claims (Observation 4): dictionary-based methods decompress much
faster than they compress (nvCOMP::LZ4 ~18x, Chimp ~4x, Gorilla ~2x),
while delta/Lorenzo methods are balanced.
"""

from repro.core.experiments import fig9_asymmetry


def test_fig9(benchmark, suite_results, emit):
    out = benchmark(fig9_asymmetry, suite_results)
    emit("fig9_asymmetry", str(out))
    asym = out.data["asymmetry"]
    assert asym["nvcomp-lz4"] < -10, "LZ4 decode is branch-free and far faster"
    assert asym["chimp"] < -2
    assert asym["gorilla"] < -1
    for balanced in ("mpc", "spdp", "fpzip", "bitshuffle-zstd"):
        assert abs(asym[balanced]) < 0.5, balanced
