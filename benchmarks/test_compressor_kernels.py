"""Microbenchmarks of the Python compressor kernels themselves.

These time the actual implementations (not the performance model) on a
fixed 64 KB workload, giving a regression guard for the pure-Python
kernel costs that dominate suite runtime.
"""

import numpy as np
import pytest

from repro.compressors import get_compressor
from repro.data import load

_FAST = ["bitshuffle-lz4", "ndzip-cpu", "mpc", "nvcomp-bitcomp", "spdp", "buff"]


@pytest.mark.parametrize("method", _FAST)
def test_compress_kernel(benchmark, method):
    comp = get_compressor(method)
    arr = load("gas-price", 8192)
    work = arr if comp.info.supports_dtype(arr.dtype) else arr.astype(np.float64)
    blob = benchmark(comp.compress, work)
    assert len(blob) > 0


@pytest.mark.parametrize("method", _FAST)
def test_decompress_kernel(benchmark, method):
    comp = get_compressor(method)
    arr = load("gas-price", 8192)
    work = arr if comp.info.supports_dtype(arr.dtype) else arr.astype(np.float64)
    blob = comp.compress(work)
    out = benchmark(comp.decompress, blob)
    assert out.size == work.size


def test_buff_scan_vs_decode_scan(benchmark):
    """BUFF's pitch: predicate evaluation without decoding."""
    arr = np.round(np.random.default_rng(0).normal(30, 8, 65536), 2)
    comp = get_compressor("buff")
    blob = comp.compress(arr)

    def encoded_scan():
        return comp.scan_less_equal(blob, 30.0)

    mask = benchmark(encoded_scan)
    np.testing.assert_array_equal(mask, arr <= 30.0)
