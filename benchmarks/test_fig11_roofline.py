"""Figure 11: roofline placement of each method's dominant kernel.

Paper claims (Observation 10): most GPU methods sit near the memory
roof; ndzip (CPU and GPU) is compute bound; serial CPU methods float far
below both roofs, i.e. parallelization headroom exists.
"""

from repro.core.experiments import fig11_roofline


def test_fig11(benchmark, suite_results, emit):
    out = benchmark(fig11_roofline, suite_results)
    emit("fig11_roofline", str(out))
    bounds = {p.method: p.bound for p in out.data["points"]}
    for serial in ("fpzip", "gorilla", "chimp", "buff", "spdp"):
        assert bounds[serial] == "overhead", serial
    assert bounds["ndzip-cpu"] == "compute"
    assert bounds["ndzip-gpu"] == "compute"
    gpu_memory_bound = [m for m in ("gfc", "mpc", "nvcomp-bitcomp")
                        if bounds[m] == "memory"]
    assert len(gpu_memory_bound) == 3
