"""Table 10: compression performance under 4K/64K/8M block sizes.

Paper claims (Observation 8): most methods improve CR with larger
blocks, and throughputs are higher at 64K/8M than at database-page-sized
4K blocks; bitshuffle peaks at cache-resident 64K rather than 8M.
"""

from conftest import run_once

from repro.core.experiments import table10_blocksize


def test_table10(benchmark, emit):
    out = run_once(benchmark, table10_blocksize, target_elements=8192)
    emit("table10_blocksize", str(out))
    data = out.data

    improves = sum(
        1 for m in data if data[m]["64K"]["cr"] >= data[m]["4K"]["cr"] - 1e-6
    )
    assert improves >= 6, "most methods prefer larger blocks for CR"

    for method in ("pfpc", "spdp", "gorilla", "chimp"):
        assert data[method]["64K"]["ct"] > data[method]["4K"]["ct"], method
        assert data[method]["8M"]["ct"] > data[method]["4K"]["ct"], method

    # bitshuffle is tuned for L1/L2 residency: 64K beats 8M.
    assert data["bitshuffle-lz4"]["64K"]["ct"] > data["bitshuffle-lz4"]["8M"]["ct"]
