"""Table 11: read + decode + scan times on the TPC datasets.

Paper claims (Observation 9): query time is identical across methods
(the decoded frames are the same); read time varies with compressed
size; total retrieval cost tracks end-to-end wall time, making
bitshuffle::zstd and MPC the recommended choices.
"""

from conftest import run_once

from repro.core.experiments import table11_query


def test_table11(benchmark, emit):
    out = run_once(benchmark, table11_query, target_elements=8192)
    emit("table11_query", str(out))
    cells = out.data["cells"]

    order = cells["tpcH-order"]
    read_pfpc, decode_pfpc = order["pfpc"]
    # Calibration: the paper reports 78 + 356 ms for pFPC on tpcH-order.
    assert 50 < read_pfpc < 110
    assert 250 < decode_pfpc < 450

    read_fpzip, decode_fpzip = order["fpzip"]
    assert decode_fpzip > 3 * decode_pfpc, "fpzip decode dominates"

    # bitshuffle-zstd retrieval beats all serial CPU methods.
    shf = sum(order["bitshuffle-zstd"])
    for serial in ("pfpc", "spdp", "fpzip", "gorilla", "chimp"):
        assert shf < sum(order[serial]), serial

    assert "-" in out.text, "GFC column shows '-' on >512 MB TPC datasets"
